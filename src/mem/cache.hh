/**
 * @file
 * A set-associative cache tag store with pluggable replacement and
 * residency observation hooks.
 *
 * The same class backs the private L1s and the shared LLC; protocol
 * logic (MESI, inclusion, the directory) lives in Hierarchy, and the
 * sharing study attaches to the LLC through CacheObserver.
 */

#ifndef CASIM_MEM_CACHE_HH
#define CASIM_MEM_CACHE_HH

#include <bit>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/simd.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "mem/block.hh"
#include "mem/repl/policy.hh"

namespace casim {

/** Geometry of a set-associative cache. */
struct CacheGeometry
{
    /** Total capacity in bytes. */
    std::uint64_t sizeBytes = 4 * 1024 * 1024;

    /** Associativity. */
    unsigned ways = 16;

    /** Line size in bytes (power of two). */
    unsigned blockBytes = kBlockBytes;

    /** Number of sets implied by the fields above. */
    unsigned numSets() const;

    /** Validate and die with a helpful message on bad geometry. */
    void check() const;
};

/**
 * Identifies one set shard of a larger cache.
 *
 * The sharded replay engine partitions a K-way-larger cache's sets by
 * their low log2(K) set-index bits: shard `index` owns every global set
 * whose low bits equal `index`, and a shard-local Cache (built with
 * 1/K of the global capacity) maps a block address to local set
 * `globalSet >> bits`.  Selecting by the LOW bits is what makes this
 * work with a plain shift: dropping them leaves the HIGH set bits,
 * which are exactly the local set index.  The default {0, 0} is an
 * unsharded cache.
 */
struct CacheShard
{
    /** log2 of the shard count (0 = unsharded). */
    unsigned bits = 0;

    /** This shard's index in [0, 2^bits). */
    unsigned index = 0;
};

/**
 * Observer of residency lifecycle events, used by the sharing study.
 *
 * Events refer to demand activity only; writebacks and directory
 * maintenance are invisible here.
 */
class CacheObserver
{
  public:
    virtual ~CacheObserver() = default;

    /** A demand access hit `block`. */
    virtual void
    onHit(const CacheBlock &block, const ReplContext &ctx)
    {
        (void)block;
        (void)ctx;
    }

    /** A demand access missed. */
    virtual void onMiss(const ReplContext &ctx) { (void)ctx; }

    /** `block` was just installed by a fill. */
    virtual void
    onFill(const CacheBlock &block, const ReplContext &ctx)
    {
        (void)block;
        (void)ctx;
    }

    /**
     * `block`'s residency ended (replacement, external invalidation, or
     * the end-of-run flush).  The block still carries its full
     * residency instrumentation.
     */
    virtual void onResidencyEnd(const CacheBlock &block) { (void)block; }
};

/** Set-associative cache with demand access / fill / invalidate ops. */
class Cache
{
  public:
    /**
     * Called with the victim block before a fill overwrites it.  The
     * victim's set and way are passed explicitly so handlers never have
     * to recover them from the reference (which would tie the contract
     * to the victim aliasing the tag array).
     */
    using VictimHandler =
        std::function<void(const CacheBlock &, unsigned set, unsigned way)>;

    /**
     * @param name   Instance name used as the stats prefix (e.g. "llc").
     * @param geo    Cache geometry; validated here.  With a non-trivial
     *               `shard` this is the shard-LOCAL geometry (1/2^bits
     *               of the global capacity, same ways and block size).
     * @param policy Replacement policy sized for this geometry.
     * @param shard  Set shard this instance implements; {0, 0} (the
     *               default) indexes the full set range.
     */
    Cache(std::string name, const CacheGeometry &geo,
          std::unique_ptr<ReplPolicy> policy, CacheShard shard = {});

    /** Attach an observer for residency events (may be nullptr). */
    void setObserver(CacheObserver *observer) { observer_ = observer; }

    /** Set index for a block-aligned address. */
    unsigned setIndex(Addr block_addr) const;

    /**
     * Hint the hardware to pull the lookup-critical state of `set`
     * into cache: the packed tag row, its valid word, and (when the
     * policy published a prefetch hint) the set's replacement
     * metadata.  Pure performance hint issued by the batched replay
     * loop for upcoming accesses; never changes any state.
     */
    void
    prefetchSet(unsigned set) const
    {
        const std::size_t row = static_cast<std::size_t>(set) * tagStride_;
        // A tag row can span multiple cache lines (8 Addrs per line).
        for (unsigned off = 0; off < tagStride_; off += 8)
            __builtin_prefetch(&tags_[row + off]);
        __builtin_prefetch(&valid_[set]);
        // The policy's per-set state can also span lines (e.g. 16
        // 8-byte LRU stamps = 2 lines); cover all of it.
        for (std::size_t off = 0; off < policyHint_.bytesPerSet;
             off += 64)
            __builtin_prefetch(
                static_cast<const char *>(policyHint_.base) +
                set * policyHint_.bytesPerSet + off);
    }

    /** Mutable lookup without any state change; nullptr on miss. */
    CacheBlock *probe(Addr block_addr);

    /** Const lookup without any state change; nullptr on miss. */
    const CacheBlock *probe(Addr block_addr) const;

    /**
     * Perform a demand access.  On a hit the replacement state and the
     * residency instrumentation are updated and the block returned; on
     * a miss nullptr is returned and the caller is expected to fill().
     */
    CacheBlock *access(const ReplContext &ctx);

    /**
     * Install the block described by ctx, evicting an existing block if
     * the set is full.  The victim handler (if any) runs before the
     * overwrite so the caller can write back or back-invalidate.
     *
     * @return The freshly installed block.
     */
    CacheBlock &fill(const ReplContext &ctx,
                     const VictimHandler &on_victim = nullptr);

    /**
     * Externally remove a block (coherence back-invalidation).  No-op
     * if the block is absent.
     *
     * @return True iff the block was present and removed.
     */
    bool invalidate(Addr block_addr);

    /**
     * Update a resident block's dirty flag.  `block` must be a
     * reference previously returned by this cache (probe/access/fill).
     * Protocol code must use this instead of writing block.dirty
     * directly so the per-set dirty bitmap stays in sync with the
     * field (the replacement path counts dirty evictions from the
     * bitmap alone).
     */
    void setBlockDirty(CacheBlock &block, bool dirty);

    /**
     * End all outstanding residencies, reporting each to the observer.
     * Called once at the end of a simulation so residency-attributed
     * statistics cover every block.
     */
    void flushResidencies();

    /** Number of currently valid blocks. */
    std::size_t validBlocks() const;

    /** Instance name. */
    const std::string &name() const { return name_; }

    /** Geometry. */
    const CacheGeometry &geometry() const { return geo_; }

    /** The replacement policy (for tests and wrappers). */
    ReplPolicy &policy() { return *policy_; }
    const ReplPolicy &policy() const { return *policy_; }

    /** Statistics group (hits, misses, fills, evictions, ...). */
    stats::StatGroup &stats() { return stats_; }
    const stats::StatGroup &stats() const { return stats_; }

    /** Demand hits so far. */
    std::uint64_t demandHits() const { return hits_.value(); }

    /** Demand misses so far. */
    std::uint64_t demandMisses() const { return misses_.value(); }

    /** Demand accesses so far. */
    std::uint64_t
    demandAccesses() const
    {
        return hits_.value() + misses_.value();
    }

    /** Block slot at (set, way); exposed for protocol code and tests. */
    CacheBlock &
    blockAt(unsigned set, unsigned way)
    {
        return blocks_[static_cast<std::size_t>(set) * geo_.ways + way];
    }

    const CacheBlock &
    blockAt(unsigned set, unsigned way) const
    {
        return blocks_[static_cast<std::size_t>(set) * geo_.ways + way];
    }

  private:
    /** Way of block_addr within its set, or geo_.ways if absent. */
    unsigned findWay(unsigned set, Addr block_addr) const;

    /** End the residency at (set, way): notify, count, clear. */
    void endResidency(unsigned set, unsigned way, bool external);

    /**
     * Verify that the lookup arrays agree with the payload blocks for
     * one set.  Compiled away unless CASIM_PARANOID is defined.
     */
    void paranoidCheckSet(unsigned set) const;

    /** Panic if `block_addr` does not route to this shard. */
    void paranoidCheckRoute(Addr block_addr) const;

    std::string name_;
    CacheGeometry geo_;
    CacheShard shard_;
    unsigned setShift_;
    unsigned setMask_;
    std::unique_ptr<ReplPolicy> policy_;

    /**
     * Lookup-critical tag state, split out of CacheBlock so findWay
     * scans contiguous memory: tags_[set * tagStride_ + way] mirrors
     * blocks_[...].addr, and bit `way` of valid_[set] mirrors
     * blocks_[...].valid.  Rows are padded to tagStride_ =
     * simd::tagRowStride(ways) so the vector kernels always load full
     * lanes; pad slots hold kAddrInvalid and are never valid.  The
     * instrumentation-heavy CacheBlock array is only touched on hits,
     * fills and evictions.
     */
    std::vector<Addr> tags_;
    std::vector<std::uint64_t> valid_;

    /**
     * Bit `way` of dirty_[set] mirrors blocks_[...].dirty.  Kept so
     * the replacement path can count dirty evictions without loading
     * the victim's (cold, cache-missing) CacheBlock line — with no
     * observer attached, eviction then touches the victim line with
     * stores only, which never stall the pipeline the way the load
     * did.  All dirty-flag writers must go through fill() or
     * setBlockDirty() to keep the mirror in sync (paranoid builds
     * assert it).
     */
    std::vector<std::uint64_t> dirty_;

    /** Addr slots per padded tag row (see tags_). */
    unsigned tagStride_;

    /** Flat tags_/valid_-aligned index of (set, way). */
    std::size_t
    tagSlot(unsigned set, unsigned way) const
    {
        return static_cast<std::size_t>(set) * tagStride_ + way;
    }

    /**
     * Whether findWay uses the vector kernel; resolved once at
     * construction from the compiled ISA, the CPU, and CASIM_NO_SIMD.
     */
    bool simdActive_;

    /** The policy's per-set metadata array, for prefetchSet. */
    ReplPrefetchHint policyHint_;

    std::vector<CacheBlock> blocks_;
    CacheObserver *observer_ = nullptr;

    stats::StatGroup stats_;
    stats::Counter &hits_;
    stats::Counter &misses_;
    stats::Counter &fills_;
    stats::Counter &evictions_;
    stats::Counter &dirtyEvictions_;
    stats::Counter &extInvalidations_;
    stats::Counter &writeHits_;
    stats::Counter &writeMisses_;
};

} // namespace casim

#endif // CASIM_MEM_CACHE_HH
