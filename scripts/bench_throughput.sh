#!/usr/bin/env bash
# Measure the replay engine's throughput and emit BENCH_replay.json:
# microbenchmark rates for the tag-lookup / fill-evict / index-build hot
# paths, plus a timed full bench binary with the capture cache disabled,
# cold, and warm.  Run it before and after a perf change to keep the
# repo's perf trajectory honest.
#
# Usage: scripts/bench_throughput.sh [--smoke] [build-dir] [out-json]
#   --smoke    CI mode: tiny scale, one repetition, result JSON written
#              to a temp file so BENCH_replay.json is never clobbered.
#              Exercises every binary and check at minimal cost.
#   build-dir  defaults to "build" (must already be built)
#   out-json   defaults to "BENCH_replay.json"
# Environment:
#   BENCH_SCALE  workload scale of the timed full run (default 0.2)
#   BENCH_REPS   microbenchmark repetitions (default 3)
set -euo pipefail

cd "$(dirname "$0")/.."
smoke=0
if [ "${1:-}" = "--smoke" ]; then
    smoke=1
    shift
fi
build="${1:-build}"
out="${2:-BENCH_replay.json}"
scale="${BENCH_SCALE:-0.2}"
reps="${BENCH_REPS:-3}"
if [ "$smoke" -eq 1 ]; then
    scale="${BENCH_SCALE:-0.02}"
    reps=1
    # Smoke runs validate the harness, not the numbers: keep the real
    # perf baseline untouched unless the caller named an output.
    if [ "${2:-}" = "" ]; then
        out="$(mktemp /tmp/bench_replay_smoke.XXXXXX.json)"
    fi
fi

micro="${build}/bench/microbench_sim"
fullbench="${build}/bench/fig5_policy_comparison"
warm_bench="${build}/bench/warm_start_bench"
[ -x "$micro" ] || { echo "missing $micro (build first)" >&2; exit 1; }
[ -x "$fullbench" ] || { echo "missing $fullbench" >&2; exit 1; }
[ -x "$warm_bench" ] || { echo "missing $warm_bench" >&2; exit 1; }

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

echo "== microbenchmarks (${reps} repetitions) =="
micro_args=(
    --benchmark_filter='TagLookup|FillEvict|StreamSimPolicy/lru|StreamSimBatched|StreamSimSharded|StreamSimOpt|NextUseIndexBuild|LabelPlaneBuild|OracleLabel|HierarchyRun'
    --benchmark_repetitions="$reps"
    --benchmark_out="$tmpdir/micro.json"
    --benchmark_out_format=json
)
# With a single repetition there are no aggregates to report.
[ "$reps" -gt 1 ] && micro_args+=(--benchmark_report_aggregates_only=true)
[ "$smoke" -eq 1 ] && micro_args+=(--benchmark_min_time=0.05)
"$micro" "${micro_args[@]}"

echo "== warm-start: map vs deserialize latency =="
warm_args=(
    --benchmark_filter='BM_WarmStart'
    --benchmark_repetitions="$reps"
    --benchmark_out="$tmpdir/warm.json"
    --benchmark_out_format=json
)
[ "$reps" -gt 1 ] && warm_args+=(--benchmark_report_aggregates_only=true)
[ "$smoke" -eq 1 ] && warm_args+=(--benchmark_min_time=0.05)
"$warm_bench" "${warm_args[@]}"

echo "== warm-start: out-of-core replay max RSS =="
# The flat-memory guarantee: a mapped trace several times the budget
# replays through the streaming pager without growing RSS.  The replay
# mode exits nonzero on a budget violation.
trace_mb=256; rss_budget_mb=64
[ "$smoke" -eq 1 ] && { trace_mb=64; rss_budget_mb=32; }
"$warm_bench" --write --out="$tmpdir/warm_start.ccap" --mb="$trace_mb"
"$warm_bench" --replay --in="$tmpdir/warm_start.ccap" \
    --budget-mb="$rss_budget_mb" > "$tmpdir/warm_rss.json"
cat "$tmpdir/warm_rss.json"

ms_now() { date +%s%N; }
elapsed_ms() { echo $(( ($2 - $1) / 1000000 )); }

echo "== full bench: capture cache off =="
t0=$(ms_now)
"$fullbench" --scale="$scale" --jobs=1 > "$tmpdir/off.txt"
t1=$(ms_now); off_ms=$(elapsed_ms "$t0" "$t1")

echo "== full bench: capture cache cold =="
t0=$(ms_now)
"$fullbench" --scale="$scale" --jobs=1 \
    --capture-dir="$tmpdir/cache" > "$tmpdir/cold.txt"
t1=$(ms_now); cold_ms=$(elapsed_ms "$t0" "$t1")

echo "== full bench: capture cache warm =="
t0=$(ms_now)
"$fullbench" --scale="$scale" --jobs=1 \
    --capture-dir="$tmpdir/cache" > "$tmpdir/warm.txt"
t1=$(ms_now); warm_ms=$(elapsed_ms "$t0" "$t1")

cmp -s "$tmpdir/off.txt" "$tmpdir/cold.txt" || {
    echo "FATAL: cold-cache output differs from uncached" >&2; exit 1; }
cmp -s "$tmpdir/off.txt" "$tmpdir/warm.txt" || {
    echo "FATAL: warm-cache output differs from uncached" >&2; exit 1; }
echo "capture-cache outputs byte-identical (off/cold/warm)"

# Provenance: which code, on which machine, with which kernels.
commit="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
cpu_model="$(awk -F': ' '/^model name/ {print $2; exit}' /proc/cpuinfo \
             2>/dev/null || echo unknown)"
simd_isa="$("$micro" --print-simd-isa)"
echo "commit=${commit} simd=${simd_isa} cpu=${cpu_model}"

python3 - "$tmpdir/micro.json" "$out" "$scale" \
         "$off_ms" "$cold_ms" "$warm_ms" "$smoke" \
         "$commit" "$cpu_model" "$simd_isa" \
         "$tmpdir/warm.json" "$tmpdir/warm_rss.json" <<'EOF'
import json, sys

(micro_path, out_path, scale, off_ms, cold_ms, warm_ms, smoke,
 commit, cpu_model, simd_isa, warm_path, warm_rss_path) = sys.argv[1:13]
with open(micro_path) as f:
    micro = json.load(f)


def median_rates(doc):
    # Keep the median aggregate of each benchmark's repetitions; with a
    # single repetition (smoke mode) there are no aggregates, so fall
    # back to the lone iteration run.
    rates = {}
    for run in doc["benchmarks"]:
        is_median = run.get("aggregate_name") == "median"
        is_plain = "aggregate_name" not in run
        if not (is_median or is_plain):
            continue
        name = run["run_name"]
        if name in rates and not is_median:
            continue
        rates[name] = {
            "items_per_second": run.get("items_per_second"),
            "cpu_time_ns": run.get("cpu_time"),
        }
    return rates


rates = median_rates(micro)
with open(warm_path) as f:
    warm_rates = median_rates(json.load(f))
with open(warm_rss_path) as f:
    warm_rss = json.load(f)

report = {
    "schema": "casim-bench-replay-v1",
    "smoke": smoke == "1",
    "provenance": {
        "git_commit": commit,
        "cpu_model": cpu_model,
        "simd_isa": simd_isa,
    },
    "microbench": rates,
    "full_bench": {
        "binary": "fig5_policy_comparison",
        "scale": float(scale),
        "jobs": 1,
        "capture_cache_off_ms": int(off_ms),
        "capture_cache_cold_ms": int(cold_ms),
        "capture_cache_warm_ms": int(warm_ms),
    },
    "warm_start": {
        "bench": warm_rates,
        "replay": warm_rss,
    },
}
with open(out_path, "w") as f:
    json.dump(report, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {out_path}")

# Batched-vs-legacy comparison: window 0 replays the stream through
# the pre-batching loop, so the ratio is the speedup the software
# pipeline buys on this machine.
legacy = rates.get("BM_StreamSimBatched/0", {}).get("items_per_second")
batched = rates.get("BM_StreamSimBatched/8", {}).get("items_per_second")
if legacy and batched:
    print(f"batched replay: {batched / 1e6:.2f}M refs/s vs "
          f"{legacy / 1e6:.2f}M legacy ({batched / legacy:.2f}x)")

mapped_ns = warm_rates.get("BM_WarmStartMapped", {}).get("cpu_time_ns")
deser_ns = warm_rates.get(
    "BM_WarmStartDeserialized", {}).get("cpu_time_ns")
if mapped_ns and deser_ns:
    print(f"warm start: {mapped_ns / 1e3:.1f}us mapped vs "
          f"{deser_ns / 1e6:.1f}ms deserialized "
          f"({deser_ns / mapped_ns:.0f}x)")
print(f"out-of-core max RSS: {warm_rss['max_rss_bytes'] >> 20}MB over "
      f"{warm_rss['bytes_mapped'] >> 20}MB mapped "
      f"(budget {warm_rss['budget_bytes'] >> 20}MB)")
EOF
