#!/usr/bin/env bash
# Tier-1 verification: the standard build + full test suite, a
# ThreadSanitizer + CASIM_PARANOID build running the parallel-runner and
# capture-cache tests to catch data races and tag-store inconsistencies,
# a cold-then-warm capture-cache replay whose outputs must match byte
# for byte, and machine-readable result emission (--stats-out /
# --format=json) validated against docs/stats_schema.md with the JSON
# tables cross-checked cell-exact against the text output.
#
# Usage: scripts/tier1.sh [build-dir-prefix]
set -euo pipefail

cd "$(dirname "$0")/.."
prefix="${1:-build}"

echo "== tier-1: standard build + ctest =="
cmake -B "${prefix}" -S . >/dev/null
cmake --build "${prefix}" -j
ctest --test-dir "${prefix}" --output-on-failure -j

echo "== tier-1: TSan + paranoid build, parallel/capture tests =="
cmake -B "${prefix}-tsan" -S . -DCASIM_SANITIZE=thread \
      -DCASIM_PARANOID=ON >/dev/null
cmake --build "${prefix}-tsan" -j --target casim_tests
# Simd* here is what exercises the paranoid SIMD-vs-scalar cross-check
# in Cache::findWay / LruPolicy::victim on every lookup of the batched
# replay tests.  Request/Queue/Daemon cover the experiment-service
# paths (queue batching, daemon connection threads over socketpairs);
# the death tests are excluded because fork-style death tests are
# unreliable under TSan.
"${prefix}-tsan"/tests/casim_tests \
    --gtest_filter='ParallelRunner.*:CaptureCache.*:CaptureBundle.*:LabelPlane*.*:ShardedSim.*:StatMerge.*:Simd*.*:Request.*:Queue.*:Daemon.*-Request.RequireValidIsFatalWithTheValidateMessage:Queue.InvalidRequestIsFatalWithTheFieldName:Daemon.DecodeResponseDocumentIsFatalOnErrorReply'

echo "== tier-1: cold vs warm capture cache, byte-identical output =="
capdir="$(mktemp -d)"
trap 'rm -rf "${capdir}"' EXIT
bench="${prefix}/bench/fig6_sharing_awareness"
"${bench}" --scale=0.05 --capture-dir="${capdir}/cache" \
    > "${capdir}/cold.txt"
"${bench}" --scale=0.05 --capture-dir="${capdir}/cache" \
    > "${capdir}/warm.txt"
if ! cmp -s "${capdir}/cold.txt" "${capdir}/warm.txt"; then
    echo "FATAL: warm capture-cache output differs from cold" >&2
    diff "${capdir}/cold.txt" "${capdir}/warm.txt" >&2 || true
    exit 1
fi
echo "cold/warm outputs identical"

echo "== tier-1: oracle label planes match the per-fill scan =="
# The precomputed label planes must be a pure lookup-table rewrite of
# the scan oracle: fig7's text output has to be byte-identical with the
# planes disabled (CASIM_NO_LABEL_PLANES forces the old scan path).
fig7="${prefix}/bench/fig7_oracle"
"${fig7}" --scale=0.05 --capture-dir="${capdir}/cache" \
    > "${capdir}/fig7_plane.txt"
CASIM_NO_LABEL_PLANES=1 "${fig7}" --scale=0.05 \
    --capture-dir="${capdir}/cache" > "${capdir}/fig7_scan.txt"
if ! cmp -s "${capdir}/fig7_plane.txt" "${capdir}/fig7_scan.txt"; then
    echo "FATAL: label-plane fig7 output differs from scan oracle" >&2
    diff "${capdir}/fig7_plane.txt" "${capdir}/fig7_scan.txt" >&2 || true
    exit 1
fi
echo "plane/scan fig7 outputs identical"

echo "== tier-1: mmap'd trace substrate, zero-deserialization warm start =="
# The CCAP v3 substrate: a cold fig7 run persists v3 bundles, and the
# warm repeat must (a) be byte-identical, (b) perform zero bundle
# deserialization (everything arrives through mmap), and (c) match the
# CASIM_NO_MMAP=1 fully-resident fallback byte for byte.  The capture
# caches above ran at scale 0.05; this block re-runs fig7 at scale 0.2
# so the substrate is exercised on the full acceptance workload.
subdir="${capdir}/substrate-cache"
fig7_sub() { "${fig7}" --scale=0.2 --capture-dir="${subdir}" "$@"; }
fig7_sub --stats-out="${capdir}/sub_cold.json" > "${capdir}/sub_cold.txt"
fig7_sub --stats-out="${capdir}/sub_warm.json" > "${capdir}/sub_warm.txt"
CASIM_NO_MMAP=1 "${fig7}" --scale=0.2 --capture-dir="${subdir}" \
    --stats-out="${capdir}/sub_nommap.json" > "${capdir}/sub_nommap.txt"
for variant in warm nommap; do
    if ! cmp -s "${capdir}/sub_cold.txt" "${capdir}/sub_${variant}.txt"
    then
        echo "FATAL: ${variant} substrate fig7 differs from cold" >&2
        diff "${capdir}/sub_cold.txt" "${capdir}/sub_${variant}.txt" \
            >&2 || true
        exit 1
    fi
done
stat_counter() {
    python3 -c "import json, sys
doc = json.load(open(sys.argv[1]))
name = sys.argv[2]
print(doc['stats'][name.split('.')[0]][name]['value'])" "$1" "$2"
}
warm_maps=$(stat_counter "${capdir}/sub_warm.json" \
    capture_cache.mmap_maps)
warm_bytes=$(stat_counter "${capdir}/sub_warm.json" \
    capture_cache.bytes_mapped)
warm_deser=$(stat_counter "${capdir}/sub_warm.json" \
    capture_cache.deserialized)
if [ "${CASIM_NO_MMAP:-}" = "" ]; then
    if [ "${warm_maps}" -lt 1 ] || [ "${warm_bytes}" -le 0 ] ||
       [ "${warm_deser}" -ne 0 ]; then
        echo "FATAL: warm start was not zero-deserialization" \
            "(mmap_maps=${warm_maps} bytes_mapped=${warm_bytes}" \
            "deserialized=${warm_deser})" >&2
        exit 1
    fi
else
    # The no-mmap CI job: every warm load must take the resident
    # fallback instead of the mapped path.
    if [ "${warm_maps}" -ne 0 ] || [ "${warm_deser}" -lt 1 ]; then
        echo "FATAL: CASIM_NO_MMAP warm start still mapped bundles" \
            "(mmap_maps=${warm_maps} deserialized=${warm_deser})" >&2
        exit 1
    fi
fi
nommap_deser=$(stat_counter "${capdir}/sub_nommap.json" \
    capture_cache.deserialized)
if [ "${nommap_deser}" -lt 1 ]; then
    echo "FATAL: CASIM_NO_MMAP run did not take the fallback path" >&2
    exit 1
fi
for doc in sub_cold sub_warm sub_nommap; do
    shims=$(stat_counter "${capdir}/${doc}.json" \
        capture_cache.shim_uses)
    if [ "${shims}" -ne 0 ]; then
        echo "FATAL: ${doc} used a deprecated capture-cache shim" >&2
        exit 1
    fi
done
echo "warm start: ${warm_maps} bundles mapped (${warm_bytes} bytes)," \
    "zero deserialization, zero shim uses"

echo "== tier-1: out-of-core replay stays under the RSS budget =="
# A trace 4x the RSS budget must replay with flat memory through the
# mapped view's streaming pager; warm_start_bench --replay fails on a
# budget violation by itself.
wsb="${prefix}/bench/warm_start_bench"
"${wsb}" --write --out="${capdir}/oocore.ccap" --mb=128
"${wsb}" --replay --in="${capdir}/oocore.ccap" --budget-mb=32 \
    | tee "${capdir}/oocore.json"
echo "out-of-core replay within budget"

echo "== tier-1: SIMD and batching are invisible in the output =="
# The vector tag scan and the batched replay loop are pure performance
# changes: fig5 must be byte-identical with both forced off.
fig5="${prefix}/bench/fig5_policy_comparison"
"${fig5}" --scale=0.05 --jobs=2 --capture-dir="${capdir}/cache" \
    > "${capdir}/fig5_default.txt"
CASIM_NO_SIMD=1 "${fig5}" --scale=0.05 --jobs=2 \
    --capture-dir="${capdir}/cache" > "${capdir}/fig5_scalar.txt"
CASIM_BATCH_WINDOW=0 "${fig5}" --scale=0.05 --jobs=2 \
    --capture-dir="${capdir}/cache" > "${capdir}/fig5_unbatched.txt"
for variant in scalar unbatched; do
    if ! cmp -s "${capdir}/fig5_default.txt" \
            "${capdir}/fig5_${variant}.txt"; then
        echo "FATAL: ${variant} fig5 output differs from default" >&2
        diff "${capdir}/fig5_default.txt" \
            "${capdir}/fig5_${variant}.txt" >&2 || true
        exit 1
    fi
done
echo "scalar/unbatched fig5 outputs identical"

echo "== tier-1: JSON result documents match text tables =="
for fig in fig5_policy_comparison fig7_oracle; do
    "${prefix}/bench/${fig}" --scale=0.05 --jobs=2 \
        --capture-dir="${capdir}/cache" \
        --stats-out="${capdir}/${fig}.json" > "${capdir}/${fig}.txt"
    python3 scripts/check_stats_json.py "${capdir}/${fig}.json" \
        --text="${capdir}/${fig}.txt"
done

echo "== tier-1: sharded replay matches serial byte for byte =="
# fig5 at --shards=8 routes every per-set-state cell through the
# sharded engine; its table must match the serial run produced by the
# JSON check above exactly.
"${prefix}/bench/fig5_policy_comparison" --scale=0.05 --jobs=2 \
    --shards=8 --capture-dir="${capdir}/cache" \
    > "${capdir}/fig5_sharded.txt"
if ! cmp -s "${capdir}/fig5_policy_comparison.txt" \
        "${capdir}/fig5_sharded.txt"; then
    echo "FATAL: sharded fig5 output differs from serial" >&2
    diff "${capdir}/fig5_policy_comparison.txt" \
        "${capdir}/fig5_sharded.txt" >&2 || true
    exit 1
fi
echo "sharded/serial fig5 outputs identical"

echo "== tier-1: --format=json emits a valid document on stdout =="
"${prefix}/bench/fig5_policy_comparison" --scale=0.05 --jobs=2 \
    --capture-dir="${capdir}/cache" --format=json \
    > "${capdir}/fig5_stdout.json"
python3 scripts/check_stats_json.py "${capdir}/fig5_stdout.json"

echo "== tier-1: casimd daemon matches direct execution byte for byte =="
# A resident casimd serves the same figure benches through --daemon:
# the text output must match the direct runs above exactly, and a warm
# repeat request must be served entirely from the resident capture
# store — zero capture-bundle deserialization, asserted through the
# capture_cache / label_plane counters in the stats op.
sock="${capdir}/casimd.sock"
"${prefix}/src/casimd" --socket="${sock}" \
    --capture-dir="${capdir}/daemon-cache" --jobs=2 \
    --stats-out="${capdir}/casimd_stats.json" &
daemon_pid=$!
for _ in $(seq 1 100); do
    [ -S "${sock}" ] && break
    sleep 0.1
done
[ -S "${sock}" ] || { echo "FATAL: casimd did not listen" >&2; exit 1; }
python3 scripts/casimd_query.py "${sock}" ping >/dev/null

"${prefix}/bench/fig5_policy_comparison" --scale=0.05 --jobs=2 \
    --daemon="${sock}" > "${capdir}/fig5_daemon.txt"
if ! cmp -s "${capdir}/fig5_policy_comparison.txt" \
        "${capdir}/fig5_daemon.txt"; then
    echo "FATAL: fig5 through casimd differs from direct run" >&2
    diff "${capdir}/fig5_policy_comparison.txt" \
        "${capdir}/fig5_daemon.txt" >&2 || true
    exit 1
fi
"${prefix}/bench/fig7_oracle" --scale=0.05 --daemon="${sock}" \
    > "${capdir}/fig7_daemon.txt"
if ! cmp -s "${capdir}/fig7_plane.txt" "${capdir}/fig7_daemon.txt"; then
    echo "FATAL: fig7 through casimd differs from direct run" >&2
    diff "${capdir}/fig7_plane.txt" "${capdir}/fig7_daemon.txt" >&2 \
        || true
    exit 1
fi
echo "fig5/fig7 through casimd identical to direct runs"

counter() { python3 scripts/casimd_query.py "${sock}" counter "$1"; }
deser_before=$(( $(counter capture_cache.hits) \
    + $(counter capture_cache.cold_misses) \
    + $(counter capture_cache.stale_misses) \
    + $(counter capture_cache.corrupt_misses) ))
memo_before=$(counter capture_cache.memo_hits)
plane_builds_before=$(counter label_plane.builds)
plane_memo_before=$(counter label_plane.memo_hits)

"${prefix}/bench/fig7_oracle" --scale=0.05 --daemon="${sock}" \
    > "${capdir}/fig7_daemon_warm.txt"
cmp "${capdir}/fig7_daemon.txt" "${capdir}/fig7_daemon_warm.txt"

deser_after=$(( $(counter capture_cache.hits) \
    + $(counter capture_cache.cold_misses) \
    + $(counter capture_cache.stale_misses) \
    + $(counter capture_cache.corrupt_misses) ))
memo_after=$(counter capture_cache.memo_hits)
plane_builds_after=$(counter label_plane.builds)
plane_memo_after=$(counter label_plane.memo_hits)
if [ "${deser_after}" -ne "${deser_before}" ]; then
    echo "FATAL: warm casimd request deserialized capture bundles" \
        "(${deser_before} -> ${deser_after})" >&2
    exit 1
fi
if [ "${memo_after}" -le "${memo_before}" ]; then
    echo "FATAL: warm casimd request missed the resident captures" >&2
    exit 1
fi
if [ "${plane_builds_after}" -ne "${plane_builds_before}" ] ||
   [ "${plane_memo_after}" -le "${plane_memo_before}" ]; then
    echo "FATAL: warm casimd request rebuilt oracle label planes" \
        "(builds ${plane_builds_before} -> ${plane_builds_after})" >&2
    exit 1
fi
echo "warm casimd request: zero capture deserialization," \
    "memoized label planes"

echo "== tier-1: casimd protocol v2 hello and server-side sweep =="
if ! python3 scripts/casimd_query.py "${sock}" hello \
    | grep -q '\["protocol", "2"\]'; then
    echo "FATAL: casimd hello did not negotiate protocol 2" >&2
    exit 1
fi
sweep_base='{"workload": "canneal", "config": {"threads": 4, "scale": 0.05}}'
sweep_lines=$(python3 scripts/casimd_query.py "${sock}" sweep \
    "${sweep_base}" --policies=lru,srrip | wc -l)
if [ "${sweep_lines}" -ne 3 ]; then
    echo "FATAL: sweep over 2 policies returned ${sweep_lines} lines" \
        "(want header + 2 cells)" >&2
    exit 1
fi
echo "hello negotiated v2; sweep expanded 2 cells"

echo "== tier-1: concurrent casimd clients, leased captures =="
# Three clients (two fig5, one fig7) hammer one casimd at once: every
# output must still match its direct run byte for byte, the batches
# must actually have overlapped in the queue (concurrent_batches), and
# each capture identity must have been warmed exactly once over the
# daemon's whole life — the lease guarantee: lease_warms equals the
# resident entries as long as nothing was evicted.
"${prefix}/bench/fig5_policy_comparison" --scale=0.05 --jobs=2 \
    --daemon="${sock}" > "${capdir}/fig5_conc_a.txt" &
conc_a=$!
"${prefix}/bench/fig5_policy_comparison" --scale=0.05 --jobs=2 \
    --daemon="${sock}" > "${capdir}/fig5_conc_b.txt" &
conc_b=$!
"${prefix}/bench/fig7_oracle" --scale=0.05 --daemon="${sock}" \
    > "${capdir}/fig7_conc.txt" &
conc_c=$!
wait "${conc_a}" "${conc_b}" "${conc_c}"
cmp "${capdir}/fig5_policy_comparison.txt" "${capdir}/fig5_conc_a.txt"
cmp "${capdir}/fig5_policy_comparison.txt" "${capdir}/fig5_conc_b.txt"
cmp "${capdir}/fig7_plane.txt" "${capdir}/fig7_conc.txt"
concurrent=$(counter queue.concurrent_batches)
lease_warms=$(counter queue.lease_warms)
entries=$(counter resident_store.entries)
evictions=$(counter resident_store.evictions)
if [ "${concurrent}" -le 1 ]; then
    echo "FATAL: concurrent clients never overlapped in the queue" \
        "(queue.concurrent_batches=${concurrent})" >&2
    exit 1
fi
if [ "${evictions}" -ne 0 ] || [ "${lease_warms}" -ne "${entries}" ]
then
    echo "FATAL: capture identities were not warmed exactly once" \
        "(lease_warms=${lease_warms} entries=${entries}" \
        "evictions=${evictions})" >&2
    exit 1
fi
echo "3 concurrent clients byte-identical to direct runs:" \
    "concurrent_batches=${concurrent}," \
    "lease_waits=$(counter queue.lease_waits)," \
    "one warm per identity (${lease_warms})"

kill -TERM "${daemon_pid}"
if ! wait "${daemon_pid}"; then
    echo "FATAL: casimd did not exit cleanly on SIGTERM" >&2
    exit 1
fi
python3 scripts/check_stats_json.py "${capdir}/casimd_stats.json"
echo "casimd drained and flushed stats on SIGTERM"

echo "== tier-1: throughput-bench smoke run =="
# Keeps the microbench binaries and the bench_throughput harness from
# silently bit-rotting; writes its JSON to a temp file, never to
# BENCH_replay.json.
scripts/bench_throughput.sh --smoke "${prefix}"

echo "tier-1 OK"
