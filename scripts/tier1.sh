#!/usr/bin/env bash
# Tier-1 verification: the standard build + full test suite, then a
# ThreadSanitizer build running the parallel-runner tests to catch data
# races in the experiment fan-out.
#
# Usage: scripts/tier1.sh [build-dir-prefix]
set -euo pipefail

cd "$(dirname "$0")/.."
prefix="${1:-build}"

echo "== tier-1: standard build + ctest =="
cmake -B "${prefix}" -S . >/dev/null
cmake --build "${prefix}" -j
ctest --test-dir "${prefix}" --output-on-failure -j

echo "== tier-1: ThreadSanitizer build, parallel-runner tests =="
cmake -B "${prefix}-tsan" -S . -DCASIM_SANITIZE=thread >/dev/null
cmake --build "${prefix}-tsan" -j --target casim_tests
"${prefix}-tsan"/tests/casim_tests --gtest_filter='ParallelRunner.*'

echo "tier-1 OK"
