#!/usr/bin/env python3
"""Validate a casim bench JSON document against the casim-stats-1 schema.

Usage:
    check_stats_json.py DOC.json [--text=OUTPUT.txt]

Checks key presence and types for the whole document (see
docs/stats_schema.md).  With --text=FILE, additionally verifies that
every table row in the document appears cell-exact in the captured text
output: the JSON must reproduce the text-table numbers verbatim.

Exits 0 when the document is valid, 1 otherwise, printing one line per
problem.  Uses only the standard library.
"""

import json
import re
import sys

SCHEMA_ID = "casim-stats-1"

CONFIG_KEYS = {
    "threads": int,
    "scale": (int, float),
    "seed": int,
    "llc_small_bytes": int,
    "llc_large_bytes": int,
    "llc_ways": int,
    "capture_dir": str,
}

STAT_KINDS = {
    "counter": {"value": int},
    "vector": {"values": dict, "total": int},
    "distribution": {
        "count": int,
        "mean": (int, float, type(None)),
        "min": (int, float, type(None)),
        "max": (int, float, type(None)),
        "stddev": (int, float, type(None)),
    },
    "histogram": {"buckets": dict, "total": int},
    "formula": {"value": (int, float, type(None))},
}

errors = []


def error(message):
    errors.append(message)
    print(f"check_stats_json: {message}", file=sys.stderr)


def check_type(value, expected, what):
    # bool is an int subclass; never accept it where a number is expected.
    if isinstance(value, bool) or not isinstance(value, expected):
        error(f"{what}: expected {expected}, got {type(value).__name__}")
        return False
    return True


def check_table(table, index):
    what = f"tables[{index}]"
    for key, kind in (("title", str), ("headers", list),
                      ("rows", list), ("separators", list)):
        if key not in table:
            error(f"{what}: missing '{key}'")
            return
        check_type(table[key], kind, f"{what}.{key}")
    width = len(table["headers"])
    for r, row in enumerate(table["rows"]):
        if not check_type(row, list, f"{what}.rows[{r}]"):
            continue
        if len(row) != width:
            error(f"{what}.rows[{r}]: {len(row)} cells, "
                  f"expected {width} (header width)")
        for c, cell in enumerate(row):
            check_type(cell, str, f"{what}.rows[{r}][{c}]")
    for s, sep in enumerate(table["separators"]):
        check_type(sep, int, f"{what}.separators[{s}]")


def check_stat(name, stat, group_key):
    what = f"stats[{group_key}][{name}]"
    if not check_type(stat, dict, what):
        return
    kind = stat.get("kind")
    if kind not in STAT_KINDS:
        error(f"{what}: unknown kind {kind!r}")
        return
    for field, expected in STAT_KINDS[kind].items():
        if field not in stat:
            error(f"{what}: missing '{field}'")
        else:
            check_type(stat[field], expected, f"{what}.{field}")


def check_document(doc):
    for key, kind in (("schema", str), ("bench", str), ("config", dict),
                      ("tables", list), ("notes", list), ("stats", dict)):
        if key not in doc:
            error(f"document: missing top-level '{key}'")
            return
        check_type(doc[key], kind, f"document.{key}")

    if doc["schema"] != SCHEMA_ID:
        error(f"schema: expected {SCHEMA_ID!r}, got {doc['schema']!r}")

    for key, kind in CONFIG_KEYS.items():
        if key not in doc["config"]:
            error(f"config: missing '{key}'")
        else:
            check_type(doc["config"][key], kind, f"config.{key}")

    for i, table in enumerate(doc["tables"]):
        if check_type(table, dict, f"tables[{i}]"):
            check_table(table, i)

    for i, note in enumerate(doc["notes"]):
        check_type(note, str, f"notes[{i}]")

    for group_key, group in doc["stats"].items():
        if not check_type(group, dict, f"stats[{group_key}]"):
            continue
        for name, stat in group.items():
            check_stat(name, stat, group_key)


def check_against_text(doc, text):
    """Every JSON table row must appear cell-exact in the text output."""
    lines = text.splitlines()
    for i, table in enumerate(doc.get("tables", [])):
        title = table.get("title", "")
        if not any(title in line for line in lines):
            error(f"tables[{i}]: title {title!r} not in text output")
        for r, row in enumerate(table.get("rows", [])):
            # Cells may contain spaces; in the text table consecutive
            # cells are separated by runs of whitespace.
            pattern = re.compile(
                r"\s+".join(re.escape(cell) for cell in row))
            if not any(pattern.search(line) for line in lines):
                error(f"tables[{i}].rows[{r}]: cells {row!r} do not "
                      f"match any text-output line")


def main(argv):
    doc_path = None
    text_path = None
    for arg in argv[1:]:
        if arg.startswith("--text="):
            text_path = arg[len("--text="):]
        elif arg.startswith("-"):
            print(__doc__, file=sys.stderr)
            return 1
        elif doc_path is None:
            doc_path = arg
        else:
            print(__doc__, file=sys.stderr)
            return 1
    if doc_path is None:
        print(__doc__, file=sys.stderr)
        return 1

    try:
        with open(doc_path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        error(f"cannot load {doc_path}: {exc}")
        return 1

    check_document(doc)

    if text_path is not None:
        try:
            with open(text_path, encoding="utf-8") as f:
                text = f.read()
        except OSError as exc:
            error(f"cannot load {text_path}: {exc}")
            return 1
        check_against_text(doc, text)

    if errors:
        print(f"check_stats_json: {doc_path}: {len(errors)} problem(s)",
              file=sys.stderr)
        return 1
    print(f"check_stats_json: {doc_path}: OK "
          f"({len(doc['tables'])} tables, {len(doc['stats'])} stat groups)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
