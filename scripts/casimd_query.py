#!/usr/bin/env python3
"""One-shot client for a casimd daemon on a Unix socket.

Sends a single request line and prints the response document(s):

  casimd_query.py SOCKET ping                 # liveness probe
  casimd_query.py SOCKET stats                # full stats document
  casimd_query.py SOCKET shutdown             # graceful stop
  casimd_query.py SOCKET hello [PROTOCOL]     # protocol negotiation
  casimd_query.py SOCKET raw '<json-line>'    # any protocol line
  casimd_query.py SOCKET counter NAME         # one stats counter value
  casimd_query.py SOCKET sweep '<base-json>' [--workloads=a,b]
                 [--policies=x,y] [--llc-bytes=N,M]
                                              # server-side cross product

`counter` extracts a single numeric value (e.g.
`capture_cache.memo_hits`) from the stats document — what tier1.sh
uses to assert that warm requests skip capture deserialization.

`sweep` ships one protocol-v2 sweep op: the daemon expands the
(workloads x policies x llc_bytes) cross product around the base
request and streams back a header document (cell count + expansion
order) followed by one result document per cell; all lines are printed
to stdout in order.
"""

import json
import socket
import sys


def connect_lines(path, line):
    """Send one request line; return a text stream of response lines."""
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.connect(path)
    sock.sendall(line.encode() + b"\n")
    return sock.makefile("r")


def read_line(stream):
    response = stream.readline()
    if not response.endswith("\n"):
        sys.exit("casimd_query: connection closed mid-response")
    return response


def split_csv(flag, value):
    items = [item for item in value.split(",") if item]
    if not items:
        sys.exit(f"casimd_query: {flag} needs a comma-separated list")
    return items


def build_sweep_request(argv):
    try:
        base = json.loads(argv[0])
    except (IndexError, json.JSONDecodeError) as err:
        sys.exit(f"casimd_query: sweep needs a base request JSON: {err}")
    request = {"op": "sweep", "base": base}
    for arg in argv[1:]:
        if arg.startswith("--workloads="):
            request["workloads"] = split_csv(
                "--workloads", arg.split("=", 1)[1])
        elif arg.startswith("--policies="):
            request["policies"] = split_csv(
                "--policies", arg.split("=", 1)[1])
        elif arg.startswith("--llc-bytes="):
            request["llc_bytes"] = [
                int(x) for x in split_csv("--llc-bytes",
                                          arg.split("=", 1)[1])]
        else:
            sys.exit(f"casimd_query: unknown sweep flag '{arg}'")
    return json.dumps(request)


def run_sweep(path, argv):
    stream = connect_lines(path, build_sweep_request(argv))
    header_line = read_line(stream)
    sys.stdout.write(header_line)
    header = json.loads(header_line)
    if "error" in header:
        sys.exit(f"casimd_query: sweep failed: {header['error']}")
    rows = dict(header["tables"][0]["rows"])
    for _ in range(int(rows["cells"])):
        sys.stdout.write(read_line(stream))


def main():
    if len(sys.argv) < 3:
        sys.exit(__doc__.strip())
    path, mode = sys.argv[1], sys.argv[2]

    if mode == "sweep":
        run_sweep(path, sys.argv[3:])
        return

    if mode in ("ping", "stats", "shutdown"):
        line = json.dumps({"op": mode})
    elif mode == "hello":
        request = {"op": "hello"}
        if len(sys.argv) > 3:
            request["protocol"] = int(sys.argv[3])
        line = json.dumps(request)
    elif mode == "raw":
        line = sys.argv[3]
    elif mode == "counter":
        line = json.dumps({"op": "stats"})
    else:
        sys.exit(f"casimd_query: unknown mode '{mode}'")

    response = read_line(connect_lines(path, line))

    if mode != "counter":
        sys.stdout.write(response)
        return

    name = sys.argv[3]
    document = json.loads(response)
    group = name.split(".", 1)[0]
    try:
        print(document["stats"][group][name]["value"])
    except KeyError:
        sys.exit(f"casimd_query: no counter '{name}' in stats document")


if __name__ == "__main__":
    main()
