#!/usr/bin/env python3
"""One-shot client for a casimd daemon on a Unix socket.

Sends a single request line and prints the response document(s):

  casimd_query.py SOCKET ping                 # liveness probe
  casimd_query.py SOCKET stats                # full stats document
  casimd_query.py SOCKET shutdown             # graceful stop
  casimd_query.py SOCKET raw '<json-line>'    # any protocol line
  casimd_query.py SOCKET counter NAME         # one stats counter value

`counter` extracts a single numeric value (e.g.
`capture_cache.memo_hits`) from the stats document — what tier1.sh
uses to assert that warm requests skip capture deserialization.
"""

import json
import socket
import sys


def read_line(sock):
    buf = b""
    while not buf.endswith(b"\n"):
        chunk = sock.recv(65536)
        if not chunk:
            sys.exit("casimd_query: connection closed mid-response")
        buf += chunk
    return buf.decode()


def main():
    if len(sys.argv) < 3:
        sys.exit(__doc__.strip())
    path, mode = sys.argv[1], sys.argv[2]

    if mode in ("ping", "stats", "shutdown"):
        line = json.dumps({"op": mode})
    elif mode == "raw":
        line = sys.argv[3]
    elif mode == "counter":
        line = json.dumps({"op": "stats"})
    else:
        sys.exit(f"casimd_query: unknown mode '{mode}'")

    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.connect(path)
    sock.sendall(line.encode() + b"\n")
    response = read_line(sock)
    sock.close()

    if mode != "counter":
        sys.stdout.write(response)
        return

    name = sys.argv[3]
    document = json.loads(response)
    group = name.split(".", 1)[0]
    try:
        print(document["stats"][group][name]["value"])
    except KeyError:
        sys.exit(f"casimd_query: no counter '{name}' in stats document")


if __name__ == "__main__":
    main()
