/**
 * @file
 * Trace tool: capture a workload's LLC reference stream to a binary
 * file, inspect a saved stream, or replay one under a chosen policy —
 * so expensive hierarchy captures can be shared between experiments.
 *
 * Usage:
 *   example_trace_tool capture --workload=canneal --out=canneal.llc
 *                      [--scale=0.5] [--threads=8] [--llc-mb=4]
 *   example_trace_tool info    --in=canneal.llc
 *   example_trace_tool replay  --in=canneal.llc --policy=drrip
 *                      [--llc-mb=4]
 */

#include <iostream>

#include "common/options.hh"
#include "common/table.hh"
#include "mem/repl/factory.hh"
#include "sim/capture_cache.hh"
#include "sim/experiment.hh"
#include "sim/stream_sim.hh"
#include "trace/trace_io.hh"

using namespace casim;

namespace {

int
doCapture(const Options &options)
{
    StudyConfig config = StudyConfig::fromOptions(options);
    if (!options.has("scale"))
        config.workload.scale = 0.5;
    const std::string name = options.getString("workload", "canneal");
    const std::string out =
        options.getString("out", name + ".llc");

    std::cout << "Capturing LLC stream of '" << name << "'...\n";
    CaptureCache cache;
    const CapturedWorkload wl = captureWorkload(name, config, cache);
    saveTrace(wl.stream, out); // fatal on any write failure
    std::cout << "Wrote " << wl.stream.size() << " LLC references ("
              << wl.demandAccesses << " demand refs upstream) to "
              << out << "\n";
    return 0;
}

int
doInfo(const Options &options)
{
    const std::string in = options.getString("in", "");
    if (in.empty()) {
        std::cerr << "info needs --in=<file>\n";
        return 1;
    }
    const Trace trace = loadTrace(in);
    std::cout << "name:             " << trace.name() << "\n"
              << "cores:            " << trace.numCores() << "\n"
              << "references:       " << trace.size() << "\n"
              << "footprint:        "
              << trace.footprintBlocks() * kBlockBytes / 1048576.0
              << " MB\n"
              << "write fraction:   "
              << TablePrinter::fmt(trace.writeFraction(), 4) << "\n"
              << "shared footprint: "
              << trace.sharedFootprintBlocks() << " blocks\n";
    return 0;
}

int
doReplay(const Options &options)
{
    const StudyConfig config = StudyConfig::fromOptions(options);
    const std::string in = options.getString("in", "");
    if (in.empty()) {
        std::cerr << "replay needs --in=<file>\n";
        return 1;
    }
    const std::string policy = options.getString("policy", "lru");
    const std::uint64_t llc_bytes =
        options.getUint("llc-mb", config.llcSmallBytes >> 20) << 20;
    const CacheGeometry geo = config.llcGeometry(llc_bytes);

    const Trace trace = loadTrace(in);
    ReplaySpec spec;
    spec.policy = policy;
    spec.geo = geo;
    const auto misses = replayMisses(trace, spec);
    std::cout << policy << " on '" << trace.name() << "' at "
              << (llc_bytes >> 20) << "MB: " << misses
              << " misses / " << trace.size() << " refs (ratio "
              << TablePrinter::fmt(trace.empty()
                                       ? 0.0
                                       : double(misses) / trace.size(),
                                   4)
              << ")\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options options(argc, argv);
    const std::string mode = options.positional().empty()
                                 ? "capture"
                                 : options.positional()[0];
    if (mode == "capture")
        return doCapture(options);
    if (mode == "info")
        return doInfo(options);
    if (mode == "replay")
        return doReplay(options);
    std::cerr << "unknown mode '" << mode
              << "' (expected capture | info | replay)\n";
    return 1;
}
