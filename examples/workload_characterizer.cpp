/**
 * @file
 * Workload characterizer: per-application LLC sharing profile plus the
 * oracle's headroom, across every registered workload (or one chosen
 * with --workload=<name>).
 *
 * Usage: example_workload_characterizer [--workload=all] [--scale=1]
 *        [--threads=8]
 */

#include <iostream>

#include "common/options.hh"
#include "common/table.hh"
#include "mem/repl/factory.hh"
#include "sim/experiment.hh"

using namespace casim;

int
main(int argc, char **argv)
{
    const Options options(argc, argv);
    StudyConfig config = StudyConfig::fromOptions(options);
    const std::string which = options.getString("workload", "all");

    std::vector<std::string> names;
    if (which == "all") {
        for (const auto &info : allWorkloads())
            names.push_back(info.name);
    } else {
        names.push_back(which);
    }

    TablePrinter table(
        "Workload sharing profile (hierarchy capture at " +
            std::to_string(config.llcSmallBytes >> 20) + "MB LLC)",
        {"app", "suite", "refs(K)", "fp(MB)", "llc_miss%", "shared_hit%",
         "opt4", "opt8", "sa4", "sa8"});

    std::vector<double> gains4, gains8;
    for (const auto &name : names) {
        const CapturedWorkload captured = captureWorkload(name, config);
        const auto &hier = captured.hierarchy;
        const NextUseIndex index(captured.stream);

        double opt_ratio[2], sa_ratio[2];
        int k = 0;
        for (const std::uint64_t bytes :
             {config.llcSmallBytes, config.llcLargeBytes}) {
            OracleLabeler oracle = makeOracle(index, config, bytes);
            ReplaySpec lru_spec;
            lru_spec.geo = config.llcGeometry(bytes);
            const auto lru = replayMisses(captured.stream, lru_spec);
            ReplaySpec opt_spec = lru_spec;
            opt_spec.policy = "opt";
            opt_spec.nextUse = &index;
            const auto opt = replayMisses(captured.stream, opt_spec);
            ReplaySpec sa_spec = lru_spec;
            sa_spec.labeler = &oracle;
            sa_spec.config = &config;
            const auto sa = replayMisses(captured.stream, sa_spec);
            opt_ratio[k] = opt / double(lru);
            sa_ratio[k] = sa / double(lru);
            ++k;
        }
        gains4.push_back(sa_ratio[0]);
        gains8.push_back(sa_ratio[1]);

        table.addRow(
            {captured.info.name, captured.info.suite,
             TablePrinter::fmt(captured.demandAccesses / 1000.0, 0),
             TablePrinter::fmt(
                 captured.footprintBlocks * kBlockBytes / 1048576.0, 1),
             TablePrinter::fmt(100.0 * hier.llcMisses /
                                   std::max<std::uint64_t>(
                                       1, hier.llcAccesses),
                               1),
             TablePrinter::fmt(100.0 * hier.sharing.sharedHitFraction,
                               1),
             TablePrinter::fmt(opt_ratio[0], 3),
             TablePrinter::fmt(opt_ratio[1], 3),
             TablePrinter::fmt(sa_ratio[0], 3),
             TablePrinter::fmt(sa_ratio[1], 3)});
    }
    if (names.size() > 1) {
        table.addSeparator();
        table.addRow({"mean", "", "", "", "", "",
                      "", "",
                      TablePrinter::fmt(mean(gains4), 3),
                      TablePrinter::fmt(mean(gains8), 3)});
    }
    table.print(std::cout);
    std::cout << "opt4/opt8: Belady misses normalised to LRU at 4/8 MB; "
                 "sa4/sa8: sharing-aware\noracle composed with LRU, "
                 "normalised to LRU (lower is better).\n";
    return 0;
}
