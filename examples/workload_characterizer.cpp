/**
 * @file
 * Workload characterizer: per-application LLC sharing profile plus the
 * oracle's headroom, across every registered workload (or one chosen
 * with --workload=<name>).  One ExperimentRequest batch covers every
 * (workload, capacity, policy) cell.
 *
 * Usage: example_workload_characterizer [--workload=all] [--scale=1]
 *        [--threads=8]
 */

#include <algorithm>
#include <iostream>

#include "common/options.hh"
#include "common/table.hh"
#include "sim/capture_cache.hh"
#include "sim/queue.hh"
#include "wgen/registry.hh"

using namespace casim;

int
main(int argc, char **argv)
{
    const Options options(argc, argv);
    StudyConfig config = StudyConfig::fromOptions(options);
    const std::string which = options.getString("workload", "all");

    std::vector<std::string> names;
    std::vector<std::string> suites;
    if (which == "all") {
        for (const auto &info : allWorkloads()) {
            names.push_back(info.name);
            suites.push_back(info.suite);
        }
    } else {
        names.push_back(which);
        suites.push_back(workloadInfo(which).suite);
    }

    CaptureCache cache;
    ParallelRunner runner(options.jobs());
    ExperimentQueue queue(cache, runner);

    // Per workload: the capture-time profile and {lru, opt, sa-oracle}
    // replays at both studied capacities.
    std::vector<ExperimentRequest> requests;
    for (const auto &name : names) {
        ExperimentRequest capture;
        capture.kind = "capture";
        capture.workload = name;
        capture.config = config;
        requests.push_back(capture);
        for (const std::uint64_t bytes :
             {config.llcSmallBytes, config.llcLargeBytes}) {
            ExperimentRequest lru;
            lru.workload = name;
            lru.llcBytes = bytes;
            lru.config = config;
            ExperimentRequest opt = lru;
            opt.policy = "opt";
            ExperimentRequest aware = lru;
            aware.labeler = "oracle";
            requests.push_back(lru);
            requests.push_back(opt);
            requests.push_back(aware);
        }
    }
    const auto results = queue.runBatch(requests);

    TablePrinter table(
        "Workload sharing profile (hierarchy capture at " +
            std::to_string(config.llcSmallBytes >> 20) + "MB LLC)",
        {"app", "suite", "refs(K)", "fp(MB)", "llc_miss%", "shared_hit%",
         "opt4", "opt8", "sa4", "sa8"});

    std::vector<double> gains4, gains8;
    for (std::size_t n = 0; n < names.size(); ++n) {
        const ExperimentResult *cells = &results[n * 7];
        const ExperimentResult &cap = cells[0];
        const auto &hier = cap.hierarchy;

        double opt_ratio[2], sa_ratio[2];
        for (int k = 0; k < 2; ++k) {
            const double lru = static_cast<double>(cells[1 + k * 3].misses);
            opt_ratio[k] = cells[2 + k * 3].misses / lru;
            sa_ratio[k] = cells[3 + k * 3].misses / lru;
        }
        gains4.push_back(sa_ratio[0]);
        gains8.push_back(sa_ratio[1]);

        table.addRow(
            {names[n], suites[n],
             TablePrinter::fmt(cap.demandAccesses / 1000.0, 0),
             TablePrinter::fmt(
                 cap.footprintBlocks * kBlockBytes / 1048576.0, 1),
             TablePrinter::fmt(100.0 * hier.llcMisses /
                                   std::max<std::uint64_t>(
                                       1, hier.llcAccesses),
                               1),
             TablePrinter::fmt(100.0 * hier.sharing.sharedHitFraction,
                               1),
             TablePrinter::fmt(opt_ratio[0], 3),
             TablePrinter::fmt(opt_ratio[1], 3),
             TablePrinter::fmt(sa_ratio[0], 3),
             TablePrinter::fmt(sa_ratio[1], 3)});
    }
    if (names.size() > 1) {
        table.addSeparator();
        table.addRow({"mean", "", "", "", "", "",
                      "", "",
                      TablePrinter::fmt(mean(gains4), 3),
                      TablePrinter::fmt(mean(gains8), 3)});
    }
    table.print(std::cout);
    std::cout << "opt4/opt8: Belady misses normalised to LRU at 4/8 MB; "
                 "sa4/sa8: sharing-aware\noracle composed with LRU, "
                 "normalised to LRU (lower is better).\n";
    return 0;
}
