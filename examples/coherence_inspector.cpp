/**
 * @file
 * Coherence inspector: runs one workload through the full hierarchy
 * and reports its MESI traffic profile — upgrades, interventions,
 * invalidations, back-invalidations, writeback flows — together with
 * the DRAM row-buffer behaviour and the timing summary.  Useful for
 * understanding *why* a workload's LLC stream looks the way it does.
 *
 * Usage: example_coherence_inspector [--workload=fluidanimate]
 *        [--scale=0.5] [--threads=8] [--llc-mb=4] [--stats]
 */

#include <iostream>

#include "common/options.hh"
#include "common/table.hh"
#include "core/sharing_tracker.hh"
#include "mem/hierarchy.hh"
#include "mem/repl/factory.hh"
#include "sim/config.hh"
#include "wgen/registry.hh"

using namespace casim;

int
main(int argc, char **argv)
{
    const Options options(argc, argv);
    StudyConfig config = StudyConfig::fromOptions(options);
    if (!options.has("scale"))
        config.workload.scale = 0.5;
    const std::string name =
        options.getString("workload", "fluidanimate");
    const std::uint64_t llc_bytes =
        options.getUint("llc-mb", config.llcSmallBytes >> 20) << 20;

    const Trace trace = makeWorkloadTrace(name, config.workload);
    HierarchyConfig hier = config.hierarchy;
    hier.numCores = config.workload.threads;
    hier.llc = config.llcGeometry(llc_bytes);

    Hierarchy hierarchy(hier, requirePolicyFactory("lru"));
    SharingTracker tracker(hier.numCores);
    hierarchy.setLlcObserver(&tracker);
    hierarchy.run(trace);
    hierarchy.finish();

    const auto counter = [&](const char *stat_name) {
        const auto *stat = hierarchy.stats().find(
            std::string("hierarchy.") + stat_name);
        const auto *c = dynamic_cast<const stats::Counter *>(stat);
        return c == nullptr ? std::uint64_t{0} : c->value();
    };
    const double per_kilo =
        1000.0 / static_cast<double>(std::max<std::uint64_t>(
                     1, hierarchy.accesses()));

    std::cout << "Coherence profile of '" << name << "' ("
              << trace.size() << " refs, " << hier.numCores
              << " cores, " << (llc_bytes >> 20) << "MB LLC)\n\n";

    TablePrinter table("Events per kilo demand reference",
                       {"event", "count", "per_kiloref"});
    const auto row = [&](const char *label, std::uint64_t value) {
        table.addRow({label, std::to_string(value),
                      TablePrinter::fmt(value * per_kilo, 3)});
    };
    row("llc_accesses", hierarchy.llc().demandAccesses());
    row("llc_misses", hierarchy.llc().demandMisses());
    row("upgrades (S->M)", counter("upgrades"));
    row("interventions (M/E->S)", counter("interventions"));
    row("invalidations (remote write)",
        counter("invalidations_sent"));
    row("back_invalidations (inclusion)",
        counter("back_invalidations"));
    row("l1_writebacks", counter("l1_writebacks"));
    row("mem_reads", counter("mem_reads"));
    row("mem_writebacks", counter("mem_writebacks"));
    table.print(std::cout);

    std::cout << "Sharing:   " << TablePrinter::fmt(
                     100.0 * tracker.sharedHitFraction(), 1)
              << "% of LLC hit volume served by shared residencies\n";
    if (hier.useDramModel) {
        std::cout << "DRAM:      "
                  << TablePrinter::fmt(
                         100.0 * hierarchy.dram().rowHitRate(), 1)
                  << "% row-buffer hit rate over "
                  << hierarchy.dram().accesses() << " transfers\n";
    }
    std::cout << "Timing:    "
              << TablePrinter::fmt(
                     static_cast<double>(hierarchy.cycles()) /
                         static_cast<double>(trace.size()),
                     2)
              << " cycles per demand reference (simple model)\n";

    if (options.has("stats")) {
        std::cout << "\nFull statistics dump:\n";
        hierarchy.stats().dump(std::cout);
        hierarchy.llc().stats().dump(std::cout);
        tracker.stats().dump(std::cout);
        if (hier.useDramModel)
            hierarchy.dram().stats().dump(std::cout);
    }
    return 0;
}
