/**
 * @file
 * Predictor lab: train the fill-time sharing predictors on one
 * workload and inspect their quality in detail — fill-time agreement
 * with the oracle, residency-outcome confusion, coverage, and the miss
 * impact of driving the sharing-aware filter with each of them.
 *
 * Unlike the other examples this one stays on the direct ReplaySpec
 * API: it composes labeler variants (hybrid, tagged, always/never
 * baselines) and residency-outcome scoring that the ExperimentRequest
 * vocabulary deliberately does not name — it is the example of
 * dropping below the request layer when an experiment outgrows it.
 *
 * Usage: example_predictor_lab [--workload=ferret] [--llc-mb=4]
 *        [--scale=0.5] [--threads=8] [--pred-index-bits=14]
 */

#include <iostream>

#include "common/options.hh"
#include "common/table.hh"
#include "core/predictor.hh"
#include "core/sharing_aware.hh"
#include "mem/repl/factory.hh"
#include "sim/capture_cache.hh"
#include "sim/experiment.hh"
#include "sim/stream_sim.hh"

using namespace casim;

namespace {

struct LabResult
{
    std::string name;
    double fillAccuracy = 0.0;
    double fillPrecision = 0.0;
    double fillRecall = 0.0;
    double outcomeAccuracy = 0.0;
    std::uint64_t misses = 0;
};

LabResult
evaluate(const std::string &label, FillLabeler &labeler,
         FillLabeler *truth, const CapturedWorkload &wl,
         const StudyConfig &config, const CacheGeometry &geo)
{
    LabelerEvaluator evaluated(labeler, truth);
    ReplaySpec spec;
    spec.geo = geo;
    spec.labeler = &evaluated;
    spec.config = &config;
    const auto misses = replayMisses(wl.stream, spec);

    LabResult result;
    result.name = label;
    result.fillAccuracy = evaluated.accuracy();
    result.fillPrecision = evaluated.precision();
    result.fillRecall = evaluated.recall();
    result.outcomeAccuracy = evaluated.outcomeAccuracy();
    result.misses = misses;
    return result;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options options(argc, argv);
    StudyConfig config = StudyConfig::fromOptions(options);
    if (!options.has("scale"))
        config.workload.scale = 0.5;
    const std::string name = options.getString("workload", "ferret");
    const std::uint64_t llc_bytes =
        options.getUint("llc-mb", config.llcSmallBytes >> 20) << 20;
    const CacheGeometry geo = config.llcGeometry(llc_bytes);

    std::cout << "Predictor lab on '" << name << "', "
              << (llc_bytes >> 20) << "MB LLC, "
              << (1u << config.predictor.indexBits)
              << "-entry tables\n\n";

    CaptureCache cache;
    const CapturedWorkload wl = captureWorkload(name, config, cache);
    const NextUseIndex index(wl.stream);
    const SeqNo window = config.oracleWindow(llc_bytes);
    ReplaySpec lru_spec;
    lru_spec.geo = geo;
    const auto lru = replayMisses(wl.stream, lru_spec);

    AddressSharingPredictor addr(config.predictor);
    PcSharingPredictor pc(config.predictor);
    HybridSharingPredictor hybrid(config.predictor);
    TaggedSharingPredictor tagged_addr(config.predictor);
    TaggedSharingPredictor tagged_pc(config.predictor, 4, 12, true);
    OracleLabeler oracle_for_truth(index, window);
    OracleLabeler oracle_as_labeler(index, window);
    NeverSharedLabeler never;
    AlwaysSharedLabeler always;

    std::vector<LabResult> results;
    {
        OracleLabeler truth(index, window);
        results.push_back(evaluate("addr_pred", addr, &truth, wl,
                                   config, geo));
    }
    {
        OracleLabeler truth(index, window);
        results.push_back(
            evaluate("pc_pred", pc, &truth, wl, config, geo));
    }
    {
        OracleLabeler truth(index, window);
        results.push_back(evaluate("hybrid_pred", hybrid, &truth, wl,
                                   config, geo));
    }
    {
        OracleLabeler truth(index, window);
        results.push_back(evaluate("tagged_addr", tagged_addr, &truth,
                                   wl, config, geo));
    }
    {
        OracleLabeler truth(index, window);
        results.push_back(evaluate("tagged_pc", tagged_pc, &truth, wl,
                                   config, geo));
    }
    {
        OracleLabeler truth(index, window);
        results.push_back(evaluate("oracle", oracle_as_labeler, &truth,
                                   wl, config, geo));
    }
    {
        OracleLabeler truth(index, window);
        results.push_back(
            evaluate("never", never, &truth, wl, config, geo));
    }
    {
        OracleLabeler truth(index, window);
        results.push_back(
            evaluate("always", always, &truth, wl, config, geo));
    }

    TablePrinter table(
        "Fill-time labelers on '" + name + "' (truth = oracle label)",
        {"labeler", "fill_acc", "fill_prec", "fill_rec", "outcome_acc",
         "misses", "vs_lru"});
    for (const auto &r : results) {
        table.addRow({r.name, TablePrinter::fmt(r.fillAccuracy, 3),
                      TablePrinter::fmt(r.fillPrecision, 3),
                      TablePrinter::fmt(r.fillRecall, 3),
                      TablePrinter::fmt(r.outcomeAccuracy, 3),
                      std::to_string(r.misses),
                      TablePrinter::fmt(lru == 0 ? 1.0
                                                 : double(r.misses) /
                                                       lru,
                                        3)});
    }
    table.print(std::cout);

    std::cout
        << "'never' reproduces the plain base policy; 'always' "
           "stress-tests protection.\nThe gap between the predictors' "
           "and the oracle's vs_lru column is the paper's\nnegative "
           "result: history predictors do not recover the oracle's "
           "gain.\n";
    return 0;
}
