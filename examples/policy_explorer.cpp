/**
 * @file
 * Policy explorer: compare every built-in replacement policy (plus OPT
 * and the sharing-aware oracle composed with each base) on a chosen
 * workload and LLC capacity.
 *
 * Usage: example_policy_explorer [--workload=streamcluster]
 *        [--llc-mb=4] [--scale=0.5] [--threads=8]
 */

#include <iostream>

#include "common/options.hh"
#include "common/table.hh"
#include "mem/repl/factory.hh"
#include "sim/experiment.hh"

using namespace casim;

int
main(int argc, char **argv)
{
    const Options options(argc, argv);
    StudyConfig config = StudyConfig::fromOptions(options);
    if (!options.has("scale"))
        config.workload.scale = 0.5;
    const std::string name =
        options.getString("workload", "streamcluster");
    const std::uint64_t llc_bytes =
        options.getUint("llc-mb", config.llcSmallBytes >> 20) << 20;
    const CacheGeometry geo = config.llcGeometry(llc_bytes);

    std::cout << "Exploring policies on '" << name << "' with a "
              << (llc_bytes >> 20) << "MB " << geo.ways
              << "-way LLC...\n\n";

    const CapturedWorkload wl = captureWorkload(name, config);
    const NextUseIndex index(wl.stream);

    TablePrinter table(
        "'" + name + "' LLC misses by policy (stream of " +
            std::to_string(wl.stream.size()) + " refs)",
        {"policy", "misses", "miss_ratio", "vs_lru", "sa_misses",
         "sa_vs_plain"});

    ReplaySpec lru_spec;
    lru_spec.geo = geo;
    const auto lru_misses = replayMisses(wl.stream, lru_spec);
    for (const auto &policy : builtinPolicyNames()) {
        ReplaySpec spec = lru_spec;
        spec.policy = policy;
        const auto misses = replayMisses(wl.stream, spec);
        OracleLabeler fresh = makeOracle(index, config, llc_bytes);
        ReplaySpec sa_spec = spec;
        sa_spec.labeler = &fresh;
        sa_spec.config = &config;
        const auto sa = replayMisses(wl.stream, sa_spec);
        table.addRow(
            {policy, std::to_string(misses),
             TablePrinter::fmt(double(misses) / wl.stream.size(), 4),
             TablePrinter::fmt(double(misses) / lru_misses, 3),
             std::to_string(sa),
             TablePrinter::fmt(misses == 0 ? 1.0 : double(sa) / misses,
                               3)});
    }
    ReplaySpec opt_spec = lru_spec;
    opt_spec.policy = "opt";
    opt_spec.nextUse = &index;
    const auto opt = replayMisses(wl.stream, opt_spec);
    table.addSeparator();
    table.addRow({"opt (offline)", std::to_string(opt),
                  TablePrinter::fmt(double(opt) / wl.stream.size(), 4),
                  TablePrinter::fmt(double(opt) / lru_misses, 3), "-",
                  "-"});
    table.print(std::cout);

    std::cout << "sa_misses: the same base policy wrapped by the "
                 "sharing-aware oracle filter.\n";
    return 0;
}
