/**
 * @file
 * Policy explorer: compare every built-in replacement policy (plus OPT
 * and the sharing-aware oracle composed with each base) on a chosen
 * workload and LLC capacity.  Each cell is an ExperimentRequest; the
 * queue captures the workload once and fans the cells out.
 *
 * Usage: example_policy_explorer [--workload=streamcluster]
 *        [--llc-mb=4] [--scale=0.5] [--threads=8]
 */

#include <iostream>

#include "common/options.hh"
#include "common/table.hh"
#include "mem/repl/factory.hh"
#include "sim/capture_cache.hh"
#include "sim/queue.hh"

using namespace casim;

int
main(int argc, char **argv)
{
    const Options options(argc, argv);
    StudyConfig config = StudyConfig::fromOptions(options);
    if (!options.has("scale"))
        config.workload.scale = 0.5;
    const std::string name =
        options.getString("workload", "streamcluster");
    const std::uint64_t llc_bytes =
        options.getUint("llc-mb", config.llcSmallBytes >> 20) << 20;
    const CacheGeometry geo = config.llcGeometry(llc_bytes);

    std::cout << "Exploring policies on '" << name << "' with a "
              << (llc_bytes >> 20) << "MB " << geo.ways
              << "-way LLC...\n\n";

    CaptureCache cache;
    ParallelRunner runner(options.jobs());
    ExperimentQueue queue(cache, runner);

    // Per base policy a plain and an oracle-wrapped replay, plus the
    // offline OPT bound.  The duplicate lru cell dedupes in the queue.
    const auto policies = builtinPolicyNames();
    std::vector<ExperimentRequest> requests;
    ExperimentRequest lru;
    lru.workload = name;
    lru.llcBytes = llc_bytes;
    lru.config = config;
    requests.push_back(lru);
    for (const auto &policy : policies) {
        ExperimentRequest plain = lru;
        plain.policy = policy;
        ExperimentRequest sa = plain;
        sa.labeler = "oracle";
        requests.push_back(plain);
        requests.push_back(sa);
    }
    ExperimentRequest opt = lru;
    opt.policy = "opt";
    requests.push_back(opt);
    const auto results = queue.runBatch(requests);

    const std::uint64_t stream_refs = results[0].streamRefs;
    const std::uint64_t lru_misses = results[0].misses;

    TablePrinter table("'" + name + "' LLC misses by policy (stream of " +
                           std::to_string(stream_refs) + " refs)",
                       {"policy", "misses", "miss_ratio", "vs_lru",
                        "sa_misses", "sa_vs_plain"});
    for (std::size_t p = 0; p < policies.size(); ++p) {
        const std::uint64_t misses = results[1 + p * 2].misses;
        const std::uint64_t sa = results[2 + p * 2].misses;
        table.addRow(
            {policies[p], std::to_string(misses),
             TablePrinter::fmt(double(misses) / stream_refs, 4),
             TablePrinter::fmt(double(misses) / lru_misses, 3),
             std::to_string(sa),
             TablePrinter::fmt(misses == 0 ? 1.0 : double(sa) / misses,
                               3)});
    }
    const std::uint64_t opt_misses = results.back().misses;
    table.addSeparator();
    table.addRow({"opt (offline)", std::to_string(opt_misses),
                  TablePrinter::fmt(double(opt_misses) / stream_refs, 4),
                  TablePrinter::fmt(double(opt_misses) / lru_misses, 3),
                  "-", "-"});
    table.print(std::cout);

    std::cout << "sa_misses: the same base policy wrapped by the "
                 "sharing-aware oracle filter.\n";
    return 0;
}
