/**
 * @file
 * Quickstart: generate one multi-threaded workload, run it through the
 * coherent CMP hierarchy, characterize LLC sharing, and compare plain
 * LRU against the sharing-aware oracle on the captured LLC stream.
 *
 * Usage: example_quickstart [--workload=canneal] [--scale=0.25]
 *                           [--threads=8] [--llc-small-mb=4]
 */

#include <iostream>

#include "common/options.hh"
#include "common/table.hh"
#include "mem/repl/factory.hh"
#include "sim/experiment.hh"

using namespace casim;

int
main(int argc, char **argv)
{
    const Options options(argc, argv);
    StudyConfig config = StudyConfig::fromOptions(options);
    if (!options.has("scale"))
        config.workload.scale = 0.25; // keep the demo quick
    const std::string name = options.getString("workload", "canneal");

    std::cout << "casim quickstart: workload '" << name << "', "
              << config.workload.threads << " threads, scale "
              << config.workload.scale << "\n\n";

    // 1. Generate the workload and run the full coherent hierarchy,
    //    capturing the LLC reference stream.
    const CapturedWorkload captured = captureWorkload(name, config);
    const auto &hier = captured.hierarchy;

    std::cout << "demand references : " << captured.demandAccesses
              << "\n";
    std::cout << "footprint         : "
              << captured.footprintBlocks * kBlockBytes / 1024 / 1024.0
              << " MB\n";
    std::cout << "LLC accesses      : " << hier.llcAccesses << "\n";
    std::cout << "LLC miss ratio    : "
              << TablePrinter::fmt(
                     double(hier.llcMisses) /
                         std::max<std::uint64_t>(1, hier.llcAccesses),
                     4)
              << "\n";
    std::cout << "shared-hit frac   : "
              << TablePrinter::fmt(hier.sharing.sharedHitFraction, 4)
              << "\n";
    std::cout << "upgrades          : " << hier.upgrades << "\n";
    std::cout << "interventions     : " << hier.interventions << "\n\n";

    // 2. Replay the captured stream under LRU, OPT, and the
    //    sharing-aware oracle wrapped around LRU at both LLC sizes.
    TablePrinter table(
        "LLC misses on the captured stream (normalised to LRU)",
        {"llc", "lru", "opt", "sa-oracle+lru", "oracle_gain%"});
    for (const std::uint64_t bytes :
         {config.llcSmallBytes, config.llcLargeBytes}) {
        const NextUseIndex index(captured.stream);
        OracleLabeler oracle = makeOracle(index, config, bytes);

        ReplaySpec lru_spec;
        lru_spec.geo = config.llcGeometry(bytes);
        const auto lru = replayMisses(captured.stream, lru_spec);
        ReplaySpec opt_spec = lru_spec;
        opt_spec.policy = "opt";
        opt_spec.nextUse = &index;
        const auto opt = replayMisses(captured.stream, opt_spec);
        ReplaySpec aware_spec = lru_spec;
        aware_spec.labeler = &oracle;
        aware_spec.config = &config;
        const auto wrapped = replayMisses(captured.stream, aware_spec);

        const double base = static_cast<double>(lru);
        table.addRow(std::to_string(bytes >> 20) + "MB",
                     {1.0, opt / base, wrapped / base,
                      100.0 * (1.0 - wrapped / base)});
    }
    table.print(std::cout);

    std::cout << "The sharing-aware oracle protects blocks that will "
                 "be actively shared;\nits gain over LRU bounds what a "
                 "fill-time sharing predictor could achieve.\n";
    return 0;
}
