/**
 * @file
 * Quickstart: generate one multi-threaded workload, run it through the
 * coherent CMP hierarchy, characterize LLC sharing, and compare plain
 * LRU against the sharing-aware oracle on the captured LLC stream —
 * all expressed as ExperimentRequests submitted to a local
 * ExperimentQueue (the same cells a casimd daemon would run).
 *
 * Usage: example_quickstart [--workload=canneal] [--scale=0.25]
 *                           [--threads=8] [--llc-small-mb=4]
 */

#include <algorithm>
#include <iostream>

#include "common/options.hh"
#include "common/table.hh"
#include "sim/capture_cache.hh"
#include "sim/queue.hh"

using namespace casim;

int
main(int argc, char **argv)
{
    const Options options(argc, argv);
    StudyConfig config = StudyConfig::fromOptions(options);
    if (!options.has("scale"))
        config.workload.scale = 0.25; // keep the demo quick
    const std::string name = options.getString("workload", "canneal");

    std::cout << "casim quickstart: workload '" << name << "', "
              << config.workload.threads << " threads, scale "
              << config.workload.scale << "\n\n";

    // The experiment service: a capture cache (so the workload is
    // captured once, shared by every cell) and a queue scheduling the
    // cells on a worker pool.
    CaptureCache cache;
    ParallelRunner runner(options.jobs());
    ExperimentQueue queue(cache, runner);

    // One capture-numbers cell, then {lru, opt, sa-oracle} replays at
    // both LLC sizes.
    std::vector<ExperimentRequest> requests;
    ExperimentRequest capture;
    capture.kind = "capture";
    capture.workload = name;
    capture.config = config;
    requests.push_back(capture);
    for (const std::uint64_t bytes :
         {config.llcSmallBytes, config.llcLargeBytes}) {
        ExperimentRequest lru;
        lru.workload = name;
        lru.llcBytes = bytes;
        lru.config = config;
        ExperimentRequest opt = lru;
        opt.policy = "opt";
        ExperimentRequest aware = lru;
        aware.labeler = "oracle";
        requests.push_back(lru);
        requests.push_back(opt);
        requests.push_back(aware);
    }
    const auto results = queue.runBatch(requests);

    // 1. Capture-time numbers: the full coherent hierarchy run.
    const ExperimentResult &cap = results[0];
    const auto &hier = cap.hierarchy;
    std::cout << "demand references : " << cap.demandAccesses << "\n";
    std::cout << "footprint         : "
              << cap.footprintBlocks * kBlockBytes / 1024 / 1024.0
              << " MB\n";
    std::cout << "LLC accesses      : " << hier.llcAccesses << "\n";
    std::cout << "LLC miss ratio    : "
              << TablePrinter::fmt(
                     double(hier.llcMisses) /
                         std::max<std::uint64_t>(1, hier.llcAccesses),
                     4)
              << "\n";
    std::cout << "shared-hit frac   : "
              << TablePrinter::fmt(hier.sharing.sharedHitFraction, 4)
              << "\n";
    std::cout << "upgrades          : " << hier.upgrades << "\n";
    std::cout << "interventions     : " << hier.interventions << "\n\n";

    // 2. The replay cells, normalised client-side.
    TablePrinter table(
        "LLC misses on the captured stream (normalised to LRU)",
        {"llc", "lru", "opt", "sa-oracle+lru", "oracle_gain%"});
    const std::uint64_t sizes[2] = {config.llcSmallBytes,
                                    config.llcLargeBytes};
    for (int k = 0; k < 2; ++k) {
        const ExperimentResult *cells = &results[1 + k * 3];
        const double base = static_cast<double>(cells[0].misses);
        const double opt = static_cast<double>(cells[1].misses);
        const double wrapped = static_cast<double>(cells[2].misses);
        table.addRow(std::to_string(sizes[k] >> 20) + "MB",
                     {1.0, opt / base, wrapped / base,
                      100.0 * (1.0 - wrapped / base)});
    }
    table.print(std::cout);

    std::cout << "The sharing-aware oracle protects blocks that will "
                 "be actively shared;\nits gain over LRU bounds what a "
                 "fill-time sharing predictor could achieve.\n";
    return 0;
}
