/**
 * @file
 * Ablation A1: sensitivity of the sharing-aware oracle to its two
 * hyper-parameters — the future-window factor (how far ahead "will be
 * shared" looks, in multiples of the LLC block capacity) and the
 * protection rounds of the victim filter.
 *
 * For every (window, rounds) point the table reports the mean LLC miss
 * ratio of sa-oracle+LRU normalised to plain LRU across all workloads,
 * at both LLC sizes.
 *
 * Usage: ablation_window [--scale=1] [--threads=8]
 *        [--windows=1,2,4,8] [--rounds=32,128,512]
 *        [--format={text,csv,json}] [--stats-out=PATH] [--daemon=PATH]
 */

#include <sstream>

#include "common/table.hh"
#include "sim/bench_driver.hh"
#include "sim/queue.hh"

using namespace casim;

namespace {

std::vector<double>
parseList(const std::string &text)
{
    std::vector<double> values;
    std::stringstream ss(text);
    std::string item;
    while (std::getline(ss, item, ','))
        values.push_back(std::stod(item));
    return values;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchDriver driver("ablation_window", argc, argv);
    const StudyConfig &config = driver.config();
    const auto windows =
        parseList(driver.options().getString("windows", "1,2,4,8"));
    const auto rounds_list =
        parseList(driver.options().getString("rounds", "32,128,512"));
    const std::vector<std::uint64_t> capacities{config.llcSmallBytes,
                                                config.llcLargeBytes};

    // Per (capacity, workload): the LRU baseline plus one oracle cell
    // per (window, rounds) point.  Each sweep point is a config point:
    // the window factor replaces the study default and the near-reuse
    // qualifier is pinned off (the sweep studies the bare window).
    const auto infos = allWorkloads();
    std::vector<ExperimentRequest> requests;
    for (const std::uint64_t bytes : capacities) {
        for (const auto &info : infos) {
            ExperimentRequest lru;
            lru.workload = info.name;
            lru.llcBytes = bytes;
            lru.config = config;
            requests.push_back(lru);
            for (const double window : windows) {
                for (const double rounds : rounds_list) {
                    ExperimentRequest sa = lru;
                    sa.labeler = "oracle";
                    sa.config.oracleWindowFactor = window;
                    sa.config.nearWindowFactor = 0.0;
                    sa.config.protectionRounds =
                        static_cast<unsigned>(rounds);
                    requests.push_back(sa);
                }
            }
        }
    }
    const auto results = driver.service().runBatch(requests);
    const std::size_t per_cell = 1 + windows.size() * rounds_list.size();

    std::vector<std::string> headers{"window_x_capacity"};
    for (const double r : rounds_list)
        headers.push_back("rounds=" +
                          std::to_string(static_cast<int>(r)));

    for (std::size_t k = 0; k < capacities.size(); ++k) {
        // ratios[wf][rounds] accumulated across workloads.
        std::vector<std::vector<std::vector<double>>> ratios(
            windows.size(),
            std::vector<std::vector<double>>(rounds_list.size()));
        for (std::size_t w = 0; w < infos.size(); ++w) {
            const ExperimentResult *cells =
                &results[(k * infos.size() + w) * per_cell];
            const std::uint64_t lru = cells[0].misses;
            if (lru == 0)
                continue;
            for (std::size_t i = 0; i < windows.size(); ++i) {
                for (std::size_t r = 0; r < rounds_list.size(); ++r) {
                    const std::uint64_t sa =
                        cells[1 + i * rounds_list.size() + r].misses;
                    ratios[i][r].push_back(static_cast<double>(sa) /
                                           static_cast<double>(lru));
                }
            }
        }

        TablePrinter table("A1: mean sa-oracle+LRU misses / LRU misses, "
                           "LLC " +
                               std::to_string(capacities[k] >> 20) +
                               "MB",
                           headers);
        for (std::size_t i = 0; i < windows.size(); ++i) {
            std::vector<double> row;
            for (std::size_t r = 0; r < rounds_list.size(); ++r)
                row.push_back(mean(ratios[i][r]));
            table.addRow("w=" + TablePrinter::fmt(windows[i], 2) + "x",
                         row, 4);
        }
        driver.report(table);
    }
    return driver.finish();
}
