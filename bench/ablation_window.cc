/**
 * @file
 * Ablation A1: sensitivity of the sharing-aware oracle to its two
 * hyper-parameters — the future-window factor (how far ahead "will be
 * shared" looks, in multiples of the LLC block capacity) and the
 * protection rounds of the victim filter.
 *
 * For every (window, rounds) point the table reports the mean LLC miss
 * ratio of sa-oracle+LRU normalised to plain LRU across all workloads,
 * at both LLC sizes.
 *
 * Usage: ablation_window [--scale=1] [--threads=8]
 *        [--windows=1,2,4,8] [--rounds=32,128,512]
 *        [--format={text,csv,json}] [--stats-out=PATH]
 */

#include <sstream>

#include "common/table.hh"
#include "sim/bench_driver.hh"
#include "sim/experiment.hh"

using namespace casim;

namespace {

std::vector<double>
parseList(const std::string &text)
{
    std::vector<double> values;
    std::stringstream ss(text);
    std::string item;
    while (std::getline(ss, item, ','))
        values.push_back(std::stod(item));
    return values;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchDriver driver("ablation_window", argc, argv);
    const StudyConfig &config = driver.config();
    const auto windows =
        parseList(driver.options().getString("windows", "1,2,4,8"));
    const auto rounds_list =
        parseList(driver.options().getString("rounds", "32,128,512"));

    // Capture every workload once; replays sweep the parameters.
    ParallelRunner &runner = driver.runner();
    const auto captured = captureAllWorkloads(config, runner);

    std::vector<std::string> headers{"window_x_capacity"};
    for (const double r : rounds_list)
        headers.push_back("rounds=" +
                          std::to_string(static_cast<int>(r)));

    for (const std::uint64_t bytes :
         {config.llcSmallBytes, config.llcLargeBytes}) {
        const CacheGeometry geo = config.llcGeometry(bytes);

        // ratios[wf][rounds] accumulated across workloads; the next-use
        // index is built once per workload and reused for every point.
        std::vector<std::vector<std::vector<double>>> ratios(
            windows.size(),
            std::vector<std::vector<double>>(rounds_list.size()));
        for (const auto &wl : captured) {
            const NextUseIndex &index = wl.nextUse();
            ReplaySpec lru_spec;
            lru_spec.geo = geo;
            const auto lru = replayMisses(wl.stream, lru_spec);
            if (lru == 0)
                continue;
            for (std::size_t w = 0; w < windows.size(); ++w) {
                const SeqNo window = static_cast<SeqNo>(
                    windows[w] *
                    static_cast<double>(bytes / kBlockBytes));
                for (std::size_t r = 0; r < rounds_list.size(); ++r) {
                    OracleLabeler oracle(index, window);
                    StudyConfig point = config;
                    point.protectionRounds =
                        static_cast<unsigned>(rounds_list[r]);
                    ReplaySpec sa_spec = lru_spec;
                    sa_spec.labeler = &oracle;
                    sa_spec.config = &point;
                    const auto sa = replayMisses(wl.stream, sa_spec);
                    ratios[w][r].push_back(static_cast<double>(sa) /
                                           static_cast<double>(lru));
                }
            }
        }

        TablePrinter table("A1: mean sa-oracle+LRU misses / LRU misses, "
                           "LLC " + std::to_string(bytes >> 20) + "MB",
                           headers);
        for (std::size_t w = 0; w < windows.size(); ++w) {
            std::vector<double> row;
            for (std::size_t r = 0; r < rounds_list.size(); ++r)
                row.push_back(mean(ratios[w][r]));
            table.addRow("w=" + TablePrinter::fmt(windows[w], 2) + "x",
                         row, 4);
        }
        driver.report(table);
    }
    return driver.finish();
}
