/**
 * @file
 * Table 1: the workload inventory — suite, demand references, memory
 * footprint, LLC reference volume, write fraction, and LLC misses per
 * kilo demand reference (MPKR, our MPKI proxy) under LRU at both
 * studied LLC capacities.
 *
 * Usage: table1_workloads [--scale=1] [--threads=8] [--jobs=N]
 *        [--format={text,csv,json}] [--stats-out=PATH] [--daemon=PATH]
 */

#include <algorithm>

#include "common/table.hh"
#include "sim/bench_driver.hh"
#include "sim/queue.hh"

using namespace casim;

int
main(int argc, char **argv)
{
    BenchDriver driver("table1_workloads", argc, argv);
    const StudyConfig &config = driver.config();

    TablePrinter table(
        "Table 1: multi-threaded workload inventory (" +
            std::to_string(config.workload.threads) + " threads)",
        {"app", "suite", "refs(K)", "fp(MB)", "shared_fp%", "wr%",
         "llc_refs(K)", "mpkr_4mb", "mpkr_8mb"});

    // Three requests per workload: the capture-time numbers (with the
    // trace-level properties regenerated) and the LRU replay at each
    // studied capacity.
    const auto infos = allWorkloads();
    std::vector<ExperimentRequest> requests;
    for (const auto &info : infos) {
        ExperimentRequest capture;
        capture.kind = "capture";
        capture.workload = info.name;
        capture.traceProps = true;
        capture.config = config;
        requests.push_back(capture);
        for (const std::uint64_t bytes :
             {config.llcSmallBytes, config.llcLargeBytes}) {
            ExperimentRequest replay;
            replay.workload = info.name;
            replay.llcBytes = bytes;
            replay.config = config;
            requests.push_back(replay);
        }
    }
    const auto results = driver.service().runBatch(requests);

    for (std::size_t i = 0; i < infos.size(); ++i) {
        const ExperimentResult &cap = results[i * 3];
        const double shared_fp =
            100.0 *
            static_cast<double>(cap.traceSharedFootprintBlocks) /
            static_cast<double>(
                std::max<std::uint64_t>(1, cap.traceFootprintBlocks));
        const auto mpkr = [&](const ExperimentResult &replay) {
            return 1000.0 * static_cast<double>(replay.misses) /
                   static_cast<double>(cap.demandAccesses);
        };
        table.addRow(
            {infos[i].name, infos[i].suite,
             TablePrinter::fmt(cap.demandAccesses / 1000.0, 0),
             TablePrinter::fmt(
                 cap.footprintBlocks * kBlockBytes / 1048576.0, 1),
             TablePrinter::fmt(shared_fp, 1),
             TablePrinter::fmt(100.0 * cap.writeFraction, 1),
             TablePrinter::fmt(cap.streamRefs / 1000.0, 0),
             TablePrinter::fmt(mpkr(results[i * 3 + 1]), 2),
             TablePrinter::fmt(mpkr(results[i * 3 + 2]), 2)});
    }

    driver.report(table);
    return driver.finish();
}
