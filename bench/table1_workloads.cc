/**
 * @file
 * Table 1: the workload inventory — suite, demand references, memory
 * footprint, LLC reference volume, write fraction, and LLC misses per
 * kilo demand reference (MPKR, our MPKI proxy) under LRU at both
 * studied LLC capacities.
 *
 * Usage: table1_workloads [--scale=1] [--threads=8] [--jobs=N]
 *        [--format={text,csv,json}] [--stats-out=PATH]
 */

#include <algorithm>

#include "common/table.hh"
#include "sim/bench_driver.hh"
#include "sim/experiment.hh"

using namespace casim;

namespace {

/** One workload's fully computed table row. */
struct Row
{
    double refsK = 0.0;
    double footprintMb = 0.0;
    double sharedFp = 0.0;
    double writePct = 0.0;
    double llcRefsK = 0.0;
    double mpkrSmall = 0.0;
    double mpkrLarge = 0.0;
};

} // namespace

int
main(int argc, char **argv)
{
    BenchDriver driver("table1_workloads", argc, argv);
    const StudyConfig &config = driver.config();

    TablePrinter table(
        "Table 1: multi-threaded workload inventory (" +
            std::to_string(config.workload.threads) + " threads)",
        {"app", "suite", "refs(K)", "fp(MB)", "shared_fp%", "wr%",
         "llc_refs(K)", "mpkr_4mb", "mpkr_8mb"});

    const auto infos = allWorkloads();
    ParallelRunner &runner = driver.runner();

    // Each cell captures one workload and computes its whole row; no
    // state is shared between cells, and results land in suite order.
    const auto rows = runner.map<Row>(infos.size(), [&](std::size_t i) {
        const CapturedWorkload wl =
            captureWorkload(infos[i].name, config);

        // Trace-level properties need the original trace; regenerate
        // cheaply (generation is a small fraction of simulation).
        const Trace trace = makeWorkloadTrace(infos[i].name,
                                              config.workload);
        Row row;
        row.refsK = wl.demandAccesses / 1000.0;
        row.footprintMb = wl.footprintBlocks * kBlockBytes / 1048576.0;
        row.sharedFp =
            100.0 * static_cast<double>(trace.sharedFootprintBlocks()) /
            static_cast<double>(std::max<std::size_t>(
                1, trace.footprintBlocks()));
        row.writePct = 100.0 * trace.writeFraction();
        row.llcRefsK = wl.stream.size() / 1000.0;
        const auto mpkr = [&](std::uint64_t llc_bytes) {
            ReplaySpec spec;
            spec.geo = config.llcGeometry(llc_bytes);
            const auto misses = replayMisses(wl.stream, spec);
            return 1000.0 * static_cast<double>(misses) /
                   static_cast<double>(wl.demandAccesses);
        };
        row.mpkrSmall = mpkr(config.llcSmallBytes);
        row.mpkrLarge = mpkr(config.llcLargeBytes);
        return row;
    });

    for (std::size_t i = 0; i < infos.size(); ++i) {
        const Row &row = rows[i];
        table.addRow({infos[i].name, infos[i].suite,
                      TablePrinter::fmt(row.refsK, 0),
                      TablePrinter::fmt(row.footprintMb, 1),
                      TablePrinter::fmt(row.sharedFp, 1),
                      TablePrinter::fmt(row.writePct, 1),
                      TablePrinter::fmt(row.llcRefsK, 0),
                      TablePrinter::fmt(row.mpkrSmall, 2),
                      TablePrinter::fmt(row.mpkrLarge, 2)});
    }

    driver.report(table);
    return driver.finish();
}
