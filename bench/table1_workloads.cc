/**
 * @file
 * Table 1: the workload inventory — suite, demand references, memory
 * footprint, LLC reference volume, write fraction, and LLC misses per
 * kilo demand reference (MPKR, our MPKI proxy) under LRU at both
 * studied LLC capacities.
 *
 * Usage: table1_workloads [--scale=1] [--threads=8] [--csv]
 */

#include <iostream>

#include "common/options.hh"
#include "common/table.hh"
#include "mem/repl/factory.hh"
#include "sim/experiment.hh"

using namespace casim;

int
main(int argc, char **argv)
{
    const Options options(argc, argv);
    const StudyConfig config = StudyConfig::fromOptions(options);

    TablePrinter table(
        "Table 1: multi-threaded workload inventory (" +
            std::to_string(config.workload.threads) + " threads)",
        {"app", "suite", "refs(K)", "fp(MB)", "shared_fp%", "wr%",
         "llc_refs(K)", "mpkr_4mb", "mpkr_8mb"});

    for (const auto &info : allWorkloads()) {
        const CapturedWorkload wl = captureWorkload(info.name, config);

        // Trace-level properties need the original trace; regenerate
        // cheaply (generation is a small fraction of simulation).
        const Trace trace = makeWorkloadTrace(info.name,
                                              config.workload);
        const double shared_fp =
            100.0 * static_cast<double>(trace.sharedFootprintBlocks()) /
            static_cast<double>(std::max<std::size_t>(
                1, trace.footprintBlocks()));

        const double refs_k = wl.demandAccesses / 1000.0;
        const auto mpkr = [&](std::uint64_t llc_bytes) {
            const auto misses =
                replayMisses(wl.stream, config.llcGeometry(llc_bytes),
                             makePolicyFactory("lru"));
            return 1000.0 * static_cast<double>(misses) /
                   static_cast<double>(wl.demandAccesses);
        };

        table.addRow(
            {info.name, info.suite, TablePrinter::fmt(refs_k, 0),
             TablePrinter::fmt(
                 wl.footprintBlocks * kBlockBytes / 1048576.0, 1),
             TablePrinter::fmt(shared_fp, 1),
             TablePrinter::fmt(100.0 * trace.writeFraction(), 1),
             TablePrinter::fmt(wl.stream.size() / 1000.0, 0),
             TablePrinter::fmt(mpkr(config.llcSmallBytes), 2),
             TablePrinter::fmt(mpkr(config.llcLargeBytes), 2)});
    }

    if (options.has("csv"))
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    return 0;
}
