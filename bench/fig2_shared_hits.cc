/**
 * @file
 * Figure 2: fraction of LLC hit volume served by blocks that are shared
 * during their residency vs. blocks that stay private, per application,
 * at 4 MB and 8 MB — the paper's motivating observation that shared
 * blocks matter more than private blocks.
 *
 * Usage: fig2_shared_hits [--scale=1] [--threads=8]
 *        [--format={text,csv,json}] [--stats-out=PATH] [--daemon=PATH]
 */

#include "common/table.hh"
#include "sim/bench_driver.hh"
#include "sim/queue.hh"

using namespace casim;

int
main(int argc, char **argv)
{
    BenchDriver driver("fig2_shared_hits", argc, argv);
    const StudyConfig &config = driver.config();

    TablePrinter table(
        "Figure 2: share of LLC hit volume served by shared vs private "
        "residencies (LRU)",
        {"app", "shared_4mb%", "private_4mb%", "shared_8mb%",
         "private_8mb%"});

    // One sharing-characterization request per (workload, capacity).
    const auto infos = allWorkloads();
    std::vector<ExperimentRequest> requests;
    for (const auto &info : infos) {
        for (const std::uint64_t bytes :
             {config.llcSmallBytes, config.llcLargeBytes}) {
            ExperimentRequest request;
            request.kind = "sharing";
            request.workload = info.name;
            request.llcBytes = bytes;
            request.config = config;
            requests.push_back(request);
        }
    }
    const auto results = driver.service().runBatch(requests);

    std::vector<double> shared4, shared8;
    for (std::size_t w = 0; w < infos.size(); ++w) {
        std::vector<double> row;
        for (int k = 0; k < 2; ++k) {
            const SharingSummary &sharing =
                results[w * 2 + k].sharing;
            row.push_back(100.0 * sharing.sharedHitFraction);
            row.push_back(100.0 * (1.0 - sharing.sharedHitFraction));
            (k == 0 ? shared4 : shared8)
                .push_back(100.0 * sharing.sharedHitFraction);
        }
        table.addRow(infos[w].name, row, 1);
    }
    table.addSeparator();
    table.addRow("mean",
                 {mean(shared4), 100.0 - mean(shared4), mean(shared8),
                  100.0 - mean(shared8)},
                 1);

    driver.report(table);
    driver.note(
        "A block's residency is 'shared' when at least two distinct "
        "cores touch it\nbetween fill and eviction; hits are "
        "attributed when the residency ends.");
    return driver.finish();
}
