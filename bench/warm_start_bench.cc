/**
 * @file
 * Warm-start and out-of-core benchmarks for the CCAP v3 substrate.
 *
 * Three modes:
 *
 *   warm_start_bench --write --out=FILE [--mb=256] [--epoch-records=N]
 *     Generate a deterministic synthetic LLC stream of roughly --mb
 *     megabytes of trace records (plus its next-use chain) and persist
 *     it as a v3 bundle.  Run in a separate process so the writer's
 *     fully resident trace never pollutes the replayer's RSS.
 *
 *   warm_start_bench --replay --in=FILE [--budget-mb=64] [--llc-kb=1024]
 *     Map the bundle zero-copy and replay it through an LRU LLC with
 *     the streaming pager, then report max RSS (getrusage) as one JSON
 *     line.  With a nonzero --budget-mb the run fails when max RSS
 *     exceeds the budget — the flat-memory guarantee tier1.sh asserts
 *     with a trace several times the budget.
 *
 *   warm_start_bench [google-benchmark flags]
 *     BM_WarmStartMapped / BM_WarmStartDeserialized: latency of a warm
 *     load via mmap (header validation + first/last page touch) vs the
 *     fully deserializing fallback reader, over the same bundle.
 */

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <random>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include <sys/resource.h>
#include <unistd.h>

#include "common/options.hh"
#include "mem/repl/factory.hh"
#include "sim/stream_sim.hh"
#include "trace/mmap_file.hh"
#include "trace/next_use.hh"
#include "trace/trace_io.hh"

using namespace casim;

namespace {

/** Both processes must agree on the bundle's configuration hash. */
constexpr std::uint64_t kBenchHash = 0x5ca1ab1e0ddba11ull;

/**
 * Deterministic synthetic stream: references over a 2 MB block pool so
 * the LLC sees real reuse while the tag store stays small relative to
 * the RSS budget.
 */
Trace
makeStream(std::size_t count)
{
    Trace trace("warm_start", 8);
    trace.reserve(count);
    std::mt19937_64 rng(0xbe9c);
    for (std::size_t i = 0; i < count; ++i) {
        const Addr addr = (rng() % (1u << 15)) * kBlockBytes;
        trace.append(addr, 0x400000 + (rng() & 0xff) * 4,
                     static_cast<CoreId>(rng() & 7), (rng() & 7) == 0);
    }
    return trace;
}

int
doWrite(const Options &options)
{
    const std::uint64_t mb = options.getUint("mb", 256);
    const std::uint64_t epoch =
        options.getUint("epoch-records", kDefaultEpochRecords);
    const std::string out =
        options.getString("out", "warm_start.ccap");

    const auto count =
        static_cast<std::size_t>((mb << 20) / sizeof(MemAccess));
    const Trace trace = makeStream(count);
    CaptureAux aux;
    aux.nextUse = computeNextUseChain(trace);

    if (!writeFileDurably(out, [&](std::ostream &os) {
            return writeCaptureBundleV3(os, kBenchHash, {}, trace,
                                        &aux, epoch);
        })) {
        std::cerr << "FATAL: cannot write " << out << "\n";
        return 1;
    }
    std::cout << "{\"records\": " << count << ", \"file_bytes\": "
              << std::filesystem::file_size(out) << "}\n";
    return 0;
}

std::uint64_t
maxRssBytes()
{
    struct rusage usage = {};
    getrusage(RUSAGE_SELF, &usage);
    // Linux reports ru_maxrss in kilobytes.
    return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;
}

int
doReplay(const Options &options)
{
    const std::string in = options.getString("in", "");
    const std::uint64_t budget = options.getUint("budget-mb", 64) << 20;
    const std::uint64_t llc_kb = options.getUint("llc-kb", 1024);
    if (in.empty()) {
        std::cerr << "replay needs --in=<bundle>\n";
        return 1;
    }

    MappedCaptureBundle mapped;
    std::string error;
    if (!mapCaptureBundleV3(in, kBenchHash, mapped, &error)) {
        std::cerr << "FATAL: cannot map " << in << ": " << error
                  << "\n";
        return 1;
    }

    CacheGeometry geo;
    geo.sizeBytes = llc_kb << 10;
    geo.ways = 16;
    StreamSim sim(mapped.stream, geo,
                  requirePolicyFactory("lru")(geo.numSets(), geo.ways));
    sim.run();

    const std::uint64_t rss = maxRssBytes();
    std::cout << "{\"schema\": \"casim-warm-start-v1\", \"records\": "
              << mapped.stream.size() << ", \"misses\": "
              << sim.misses() << ", \"bytes_mapped\": "
              << mapped.bytesMapped << ", \"max_rss_bytes\": " << rss
              << ", \"budget_bytes\": " << budget << "}\n";
    if (budget != 0 && rss > budget) {
        std::cerr << "FATAL: max RSS " << (rss >> 20)
                  << " MB exceeds the " << (budget >> 20)
                  << " MB budget (trace "
                  << (mapped.bytesMapped >> 20) << " MB mapped)\n";
        return 1;
    }
    return 0;
}

/** Set once the latency benchmarks have written their bundle. */
std::string bench_bundle_path;

/** The shared bundle the latency benchmarks load, written once. */
const std::string &
benchBundle()
{
    static const std::string path = [] {
        const std::string file =
            (std::filesystem::temp_directory_path() /
             ("casim_warm_start_" + std::to_string(::getpid()) +
              ".ccap"))
                .string();
        const Trace trace = makeStream(1 << 20);
        CaptureAux aux;
        aux.nextUse = computeNextUseChain(trace);
        if (!writeFileDurably(file, [&](std::ostream &os) {
                return writeCaptureBundleV3(os, kBenchHash, {}, trace,
                                            &aux);
            })) {
            std::cerr << "FATAL: cannot write bench bundle\n";
            std::exit(1);
        }
        bench_bundle_path = file;
        return file;
    }();
    return path;
}

void
BM_WarmStartMapped(benchmark::State &state)
{
    const std::string &path = benchBundle();
    std::uint64_t bytes = 0;
    for (auto _ : state) {
        MappedCaptureBundle mapped;
        if (!mapCaptureBundleV3(path, kBenchHash, mapped, nullptr))
            state.SkipWithError("map failed");
        // Touch the ends so the measurement includes real page faults,
        // not just the mmap bookkeeping.
        benchmark::DoNotOptimize(mapped.stream[0].addr);
        benchmark::DoNotOptimize(
            mapped.stream[mapped.stream.size() - 1].addr);
        bytes += mapped.bytesMapped;
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_WarmStartMapped);

void
BM_WarmStartDeserialized(benchmark::State &state)
{
    const std::string &path = benchBundle();
    std::uint64_t records = 0;
    for (auto _ : state) {
        std::ifstream is(path, std::ios::binary);
        std::vector<std::uint64_t> meta;
        Trace loaded("", 1);
        CaptureAux aux;
        if (!readCaptureBundleV3(is, kBenchHash, meta, loaded, nullptr,
                                 &aux))
            state.SkipWithError("read failed");
        benchmark::DoNotOptimize(loaded.data());
        records += loaded.size();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(records));
}
BENCHMARK(BM_WarmStartDeserialized);

} // namespace

int
main(int argc, char **argv)
{
    const Options options(argc, argv);
    if (options.has("write"))
        return doWrite(options);
    if (options.has("replay"))
        return doReplay(options);

    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    if (!bench_bundle_path.empty()) {
        std::error_code ec;
        std::filesystem::remove(bench_bundle_path, ec);
    }
    return 0;
}
