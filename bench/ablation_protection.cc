/**
 * @file
 * Ablation A1b: the two protection budgets of the sharing-aware victim
 * filter — pre-share rounds (waiting for the promised sharing) and
 * post-share rounds (lingering after sharing was observed).  Reports
 * the mean and worst-case (max) per-app miss ratio of sa-oracle+LRU
 * normalised to LRU; the worst case exposes the migratory-data
 * pathology that motivates the post-share budget.
 *
 * Usage: ablation_protection [--scale=1] [--threads=8]
 *        [--pre=128,256] [--post=32,64,128] [--window-factor=4]
 *        [--format={text,csv,json}] [--stats-out=PATH]
 */

#include <algorithm>
#include <sstream>

#include "common/table.hh"
#include "sim/bench_driver.hh"
#include "sim/experiment.hh"

using namespace casim;

namespace {

std::vector<unsigned>
parseList(const std::string &text)
{
    std::vector<unsigned> values;
    std::stringstream ss(text);
    std::string item;
    while (std::getline(ss, item, ','))
        values.push_back(static_cast<unsigned>(std::stoul(item)));
    return values;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchDriver driver("ablation_protection", argc, argv);
    const StudyConfig &config = driver.config();
    const auto pres =
        parseList(driver.options().getString("pre", "128,256"));
    const auto posts =
        parseList(driver.options().getString("post", "32,64,128"));

    ParallelRunner &runner = driver.runner();
    const auto captured = captureAllWorkloads(config, runner);

    for (const std::uint64_t bytes :
         {config.llcSmallBytes, config.llcLargeBytes}) {
        const CacheGeometry geo = config.llcGeometry(bytes);

        std::vector<std::string> headers{"pre_rounds"};
        for (const unsigned post : posts)
            headers.push_back("post=" + std::to_string(post));

        // [pre][post] -> per-workload ratios.
        std::vector<std::vector<std::vector<double>>> ratios(
            pres.size(),
            std::vector<std::vector<double>>(posts.size()));
        for (const auto &wl : captured) {
            const NextUseIndex &index = wl.nextUse();
            ReplaySpec lru_spec;
            lru_spec.geo = geo;
            const auto lru = replayMisses(wl.stream, lru_spec);
            if (lru == 0)
                continue;
            for (std::size_t i = 0; i < pres.size(); ++i) {
                for (std::size_t j = 0; j < posts.size(); ++j) {
                    OracleLabeler oracle =
                        makeOracle(index, config, bytes);
                    StudyConfig point = config;
                    point.protectionRounds = pres[i];
                    point.postShareRounds = posts[j];
                    ReplaySpec sa_spec = lru_spec;
                    sa_spec.labeler = &oracle;
                    sa_spec.config = &point;
                    const auto sa = replayMisses(wl.stream, sa_spec);
                    ratios[i][j].push_back(static_cast<double>(sa) /
                                           static_cast<double>(lru));
                }
            }
        }

        TablePrinter table(
            "A1b: sa-oracle+LRU / LRU, mean (worst) across apps, LLC " +
                std::to_string(bytes >> 20) + "MB, window " +
                TablePrinter::fmt(config.oracleWindowFactor, 1) +
                "x capacity",
            headers);
        for (std::size_t i = 0; i < pres.size(); ++i) {
            std::vector<std::string> row{
                "pre=" + std::to_string(pres[i])};
            for (std::size_t j = 0; j < posts.size(); ++j) {
                const double avg = mean(ratios[i][j]);
                const double worst =
                    ratios[i][j].empty()
                        ? 0.0
                        : *std::max_element(ratios[i][j].begin(),
                                            ratios[i][j].end());
                row.push_back(TablePrinter::fmt(avg, 4) + " (" +
                              TablePrinter::fmt(worst, 3) + ")");
            }
            table.addRow(row);
        }
        driver.report(table);
    }
    return driver.finish();
}
