/**
 * @file
 * Ablation A1b: the two protection budgets of the sharing-aware victim
 * filter — pre-share rounds (waiting for the promised sharing) and
 * post-share rounds (lingering after sharing was observed).  Reports
 * the mean and worst-case (max) per-app miss ratio of sa-oracle+LRU
 * normalised to LRU; the worst case exposes the migratory-data
 * pathology that motivates the post-share budget.
 *
 * Usage: ablation_protection [--scale=1] [--threads=8]
 *        [--pre=128,256] [--post=32,64,128] [--window-factor=4]
 *        [--format={text,csv,json}] [--stats-out=PATH] [--daemon=PATH]
 */

#include <algorithm>
#include <sstream>

#include "common/table.hh"
#include "sim/bench_driver.hh"
#include "sim/queue.hh"

using namespace casim;

namespace {

std::vector<unsigned>
parseList(const std::string &text)
{
    std::vector<unsigned> values;
    std::stringstream ss(text);
    std::string item;
    while (std::getline(ss, item, ','))
        values.push_back(static_cast<unsigned>(std::stoul(item)));
    return values;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchDriver driver("ablation_protection", argc, argv);
    const StudyConfig &config = driver.config();
    const auto pres =
        parseList(driver.options().getString("pre", "128,256"));
    const auto posts =
        parseList(driver.options().getString("post", "32,64,128"));
    const std::vector<std::uint64_t> capacities{config.llcSmallBytes,
                                                config.llcLargeBytes};

    // Per (capacity, workload): the LRU baseline plus one oracle cell
    // per (pre, post) budget point, expressed as config points.
    const auto infos = allWorkloads();
    std::vector<ExperimentRequest> requests;
    for (const std::uint64_t bytes : capacities) {
        for (const auto &info : infos) {
            ExperimentRequest lru;
            lru.workload = info.name;
            lru.llcBytes = bytes;
            lru.config = config;
            requests.push_back(lru);
            for (const unsigned pre : pres) {
                for (const unsigned post : posts) {
                    ExperimentRequest sa = lru;
                    sa.labeler = "oracle";
                    sa.config.protectionRounds = pre;
                    sa.config.postShareRounds = post;
                    requests.push_back(sa);
                }
            }
        }
    }
    const auto results = driver.service().runBatch(requests);
    const std::size_t per_cell = 1 + pres.size() * posts.size();

    for (std::size_t k = 0; k < capacities.size(); ++k) {
        const std::uint64_t bytes = capacities[k];

        std::vector<std::string> headers{"pre_rounds"};
        for (const unsigned post : posts)
            headers.push_back("post=" + std::to_string(post));

        // [pre][post] -> per-workload ratios.
        std::vector<std::vector<std::vector<double>>> ratios(
            pres.size(),
            std::vector<std::vector<double>>(posts.size()));
        for (std::size_t w = 0; w < infos.size(); ++w) {
            const ExperimentResult *cells =
                &results[(k * infos.size() + w) * per_cell];
            const std::uint64_t lru = cells[0].misses;
            if (lru == 0)
                continue;
            for (std::size_t i = 0; i < pres.size(); ++i) {
                for (std::size_t j = 0; j < posts.size(); ++j) {
                    const std::uint64_t sa =
                        cells[1 + i * posts.size() + j].misses;
                    ratios[i][j].push_back(static_cast<double>(sa) /
                                           static_cast<double>(lru));
                }
            }
        }

        TablePrinter table(
            "A1b: sa-oracle+LRU / LRU, mean (worst) across apps, LLC " +
                std::to_string(bytes >> 20) + "MB, window " +
                TablePrinter::fmt(config.oracleWindowFactor, 1) +
                "x capacity",
            headers);
        for (std::size_t i = 0; i < pres.size(); ++i) {
            std::vector<std::string> row{
                "pre=" + std::to_string(pres[i])};
            for (std::size_t j = 0; j < posts.size(); ++j) {
                const double avg = mean(ratios[i][j]);
                const double worst =
                    ratios[i][j].empty()
                        ? 0.0
                        : *std::max_element(ratios[i][j].begin(),
                                            ratios[i][j].end());
                row.push_back(TablePrinter::fmt(avg, 4) + " (" +
                              TablePrinter::fmt(worst, 3) + ")");
            }
            table.addRow(row);
        }
        driver.report(table);
    }
    return driver.finish();
}
