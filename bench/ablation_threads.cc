/**
 * @file
 * Ablation A5: thread-count sweep.  How the shared fraction of LLC hit
 * volume and the oracle's gain scale from 2 to 16 threads (the paper
 * studies an 8-core CMP; this bench checks the trend is not an
 * artifact of that choice).
 *
 * Usage: ablation_threads [--scale=1] [--jobs=N]
 *        [--format={text,csv,json}] [--stats-out=PATH]
 */

#include "common/table.hh"
#include "sim/bench_driver.hh"
#include "sim/experiment.hh"

using namespace casim;

namespace {

/** Metrics of one (thread count, workload) simulation cell. */
struct Cell
{
    bool skip = true;
    double missRatio = 0.0;
    double sharedPct = 0.0;
    double gain = 0.0;
};

} // namespace

int
main(int argc, char **argv)
{
    BenchDriver driver("ablation_threads", argc, argv);
    const Options &options = driver.options();
    const std::vector<unsigned> thread_counts{2, 4, 8};

    TablePrinter table(
        "A5: thread-count sweep, means across all workloads, 4MB LLC",
        {"threads", "llc_miss_ratio", "shared_hit%", "oracle_gain%"});

    const auto infos = allWorkloads();
    ParallelRunner &runner = driver.runner();

    // One cell per (thread count, workload): the capture itself depends
    // on the thread count, so each cell runs its own capture + replays.
    const auto cells = runner.map<Cell>(
        thread_counts.size() * infos.size(), [&](std::size_t c) {
            const unsigned threads = thread_counts[c / infos.size()];
            const auto &info = infos[c % infos.size()];

            StudyConfig config = StudyConfig::fromOptions(options);
            config.workload.threads = threads;
            config.hierarchy.numCores = threads;
            const CacheGeometry geo =
                config.llcGeometry(config.llcSmallBytes);

            Cell cell;
            const CapturedWorkload wl =
                captureWorkload(info.name, config);
            if (wl.stream.empty())
                return cell;
            const NextUseIndex &index = wl.nextUse();
            ReplaySpec lru_spec;
            lru_spec.geo = geo;
            const auto lru = replayMisses(wl.stream, lru_spec);
            if (lru == 0)
                return cell;
            cell.skip = false;
            cell.missRatio = static_cast<double>(lru) /
                             static_cast<double>(wl.stream.size());
            cell.sharedPct =
                100.0 * wl.hierarchy.sharing.sharedHitFraction;
            OracleLabeler oracle =
                makeOracle(index, config, config.llcSmallBytes);
            ReplaySpec aware_spec = lru_spec;
            aware_spec.labeler = &oracle;
            aware_spec.config = &config;
            const auto aware = replayMisses(wl.stream, aware_spec);
            cell.gain = 100.0 * (1.0 - static_cast<double>(aware) /
                                           static_cast<double>(lru));
            return cell;
        });

    for (std::size_t t = 0; t < thread_counts.size(); ++t) {
        std::vector<double> miss_ratios, shared_fracs, gains;
        for (std::size_t w = 0; w < infos.size(); ++w) {
            const Cell &cell = cells[t * infos.size() + w];
            if (cell.skip)
                continue;
            miss_ratios.push_back(cell.missRatio);
            shared_fracs.push_back(cell.sharedPct);
            gains.push_back(cell.gain);
        }
        table.addRow(std::to_string(thread_counts[t]),
                     {mean(miss_ratios), mean(shared_fracs),
                      mean(gains)},
                     2);
    }

    driver.report(table);
    return driver.finish();
}
