/**
 * @file
 * Ablation A5: thread-count sweep.  How the shared fraction of LLC hit
 * volume and the oracle's gain scale from 2 to 16 threads (the paper
 * studies an 8-core CMP; this bench checks the trend is not an
 * artifact of that choice).
 *
 * Usage: ablation_threads [--scale=1] [--jobs=N]
 *        [--format={text,csv,json}] [--stats-out=PATH] [--daemon=PATH]
 */

#include "common/table.hh"
#include "sim/bench_driver.hh"
#include "sim/queue.hh"

using namespace casim;

int
main(int argc, char **argv)
{
    BenchDriver driver("ablation_threads", argc, argv);
    const Options &options = driver.options();
    const std::vector<unsigned> thread_counts{2, 4, 8};

    TablePrinter table(
        "A5: thread-count sweep, means across all workloads, 4MB LLC",
        {"threads", "llc_miss_ratio", "shared_hit%", "oracle_gain%"});

    // The capture itself depends on the thread count, so each sweep
    // point carries its own config (the queue groups cells by capture
    // identity and captures each point once).  Three requests per
    // (thread count, workload): the capture-time sharing numbers, the
    // LRU baseline, and the oracle-wrapped replay.
    const auto infos = allWorkloads();
    std::vector<ExperimentRequest> requests;
    for (const unsigned threads : thread_counts) {
        StudyConfig config = StudyConfig::fromOptions(options);
        config.workload.threads = threads;
        config.hierarchy.numCores = threads;
        for (const auto &info : infos) {
            ExperimentRequest capture;
            capture.kind = "capture";
            capture.workload = info.name;
            capture.config = config;
            ExperimentRequest lru;
            lru.workload = info.name;
            lru.llcBytes = config.llcSmallBytes;
            lru.config = config;
            ExperimentRequest aware = lru;
            aware.labeler = "oracle";
            requests.push_back(capture);
            requests.push_back(lru);
            requests.push_back(aware);
        }
    }
    const auto results = driver.service().runBatch(requests);

    for (std::size_t t = 0; t < thread_counts.size(); ++t) {
        std::vector<double> miss_ratios, shared_fracs, gains;
        for (std::size_t w = 0; w < infos.size(); ++w) {
            const ExperimentResult *cells =
                &results[(t * infos.size() + w) * 3];
            const std::uint64_t lru = cells[1].misses;
            if (cells[1].streamRefs == 0 || lru == 0)
                continue;
            miss_ratios.push_back(
                static_cast<double>(lru) /
                static_cast<double>(cells[1].streamRefs));
            shared_fracs.push_back(
                100.0 * cells[0].hierarchy.sharing.sharedHitFraction);
            gains.push_back(
                100.0 * (1.0 - static_cast<double>(cells[2].misses) /
                                   static_cast<double>(lru)));
        }
        table.addRow(std::to_string(thread_counts[t]),
                     {mean(miss_ratios), mean(shared_fracs),
                      mean(gains)},
                     2);
    }

    driver.report(table);
    return driver.finish();
}
