/**
 * @file
 * Ablation A5: thread-count sweep.  How the shared fraction of LLC hit
 * volume and the oracle's gain scale from 2 to 16 threads (the paper
 * studies an 8-core CMP; this bench checks the trend is not an
 * artifact of that choice).
 *
 * Usage: ablation_threads [--scale=1] [--csv]
 */

#include <iostream>

#include "common/options.hh"
#include "common/table.hh"
#include "mem/repl/factory.hh"
#include "sim/experiment.hh"

using namespace casim;

int
main(int argc, char **argv)
{
    const Options options(argc, argv);
    const std::vector<unsigned> thread_counts{2, 4, 8};

    TablePrinter table(
        "A5: thread-count sweep, means across all workloads, 4MB LLC",
        {"threads", "llc_miss_ratio", "shared_hit%", "oracle_gain%"});

    for (const unsigned threads : thread_counts) {
        StudyConfig config = StudyConfig::fromOptions(options);
        config.workload.threads = threads;
        config.hierarchy.numCores = threads;
        const CacheGeometry geo =
            config.llcGeometry(config.llcSmallBytes);
        const SeqNo window =
            config.oracleWindow(config.llcSmallBytes);

        std::vector<double> miss_ratios, shared_fracs, gains;
        for (const auto &info : allWorkloads()) {
            const CapturedWorkload wl =
                captureWorkload(info.name, config);
            if (wl.stream.empty())
                continue;
            const NextUseIndex index(wl.stream);
            const auto lru = replayMisses(wl.stream, geo,
                                          makePolicyFactory("lru"));
            if (lru == 0)
                continue;
            miss_ratios.push_back(
                static_cast<double>(lru) /
                static_cast<double>(wl.stream.size()));
            shared_fracs.push_back(
                100.0 * wl.hierarchy.sharing.sharedHitFraction);
            OracleLabeler oracle =
                makeOracle(index, config, config.llcSmallBytes);
            const auto aware = replayMissesWrapped(
                wl.stream, geo, makePolicyFactory("lru"), oracle,
                config);
            gains.push_back(100.0 *
                            (1.0 - static_cast<double>(aware) /
                                       static_cast<double>(lru)));
        }
        table.addRow(std::to_string(threads),
                     {mean(miss_ratios), mean(shared_fracs),
                      mean(gains)},
                     2);
    }

    if (options.has("csv"))
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    return 0;
}
