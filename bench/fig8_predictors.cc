/**
 * @file
 * Figure 8 — the predictor feasibility study (the paper's largely
 * negative result).  Two history-based fill-time sharing predictors —
 * indexed by block address and by fill PC — are trained online from
 * residency outcomes and scored against the oracle's fill-time label:
 * accuracy, precision, recall, and the miss delta when each predictor
 * replaces the oracle inside the sharing-aware victim filter.
 *
 * Usage: fig8_predictors [--scale=1] [--threads=8] [--llc-mb=4]
 *        [--pred-index-bits=14] [--format={text,csv,json}]
 *        [--stats-out=PATH] [--daemon=PATH]
 */

#include "common/table.hh"
#include "sim/bench_driver.hh"
#include "sim/queue.hh"

using namespace casim;

int
main(int argc, char **argv)
{
    BenchDriver driver("fig8_predictors", argc, argv);
    const StudyConfig &config = driver.config();
    const std::uint64_t llc_bytes = driver.llcBytes();

    TablePrinter table(
        "Figure 8: fill-time sharing predictors vs the oracle, " +
            std::to_string(llc_bytes >> 20) +
            "MB LLC (acc/prec/rec vs oracle label; miss ratio vs LRU)",
        {"app", "addr_acc", "addr_prec", "addr_rec", "addr_ratio",
         "pc_acc", "pc_prec", "pc_rec", "pc_ratio", "oracle_ratio"});

    // Four requests per workload: the LRU baseline, each evaluated
    // predictor inside the sharing-aware filter, and the oracle.
    const auto infos = allWorkloads();
    std::vector<ExperimentRequest> requests;
    for (const auto &info : infos) {
        ExperimentRequest base;
        base.workload = info.name;
        base.llcBytes = llc_bytes;
        base.config = config;

        ExperimentRequest addr = base;
        addr.labeler = "addr-pred";
        addr.evaluate = true;
        ExperimentRequest pc = base;
        pc.labeler = "pc-pred";
        pc.evaluate = true;
        ExperimentRequest oracle = base;
        oracle.labeler = "oracle";

        requests.push_back(base);
        requests.push_back(addr);
        requests.push_back(pc);
        requests.push_back(oracle);
    }
    const auto results = driver.service().runBatch(requests);

    std::vector<double> addr_acc, pc_acc, addr_ratio, pc_ratio,
        oracle_ratio;
    for (std::size_t w = 0; w < infos.size(); ++w) {
        const ExperimentResult *cells = &results[w * 4];
        const std::uint64_t lru = cells[0].misses;
        const auto ratio = [lru](std::uint64_t misses) {
            return lru == 0 ? 1.0
                            : static_cast<double>(misses) /
                                  static_cast<double>(lru);
        };
        const ExperimentResult &a = cells[1];
        const ExperimentResult &p = cells[2];
        const double o_ratio = ratio(cells[3].misses);

        table.addRow(infos[w].name,
                     {a.accuracy, a.precision, a.recall,
                      ratio(a.misses), p.accuracy, p.precision,
                      p.recall, ratio(p.misses), o_ratio},
                     3);
        addr_acc.push_back(a.accuracy);
        pc_acc.push_back(p.accuracy);
        addr_ratio.push_back(ratio(a.misses));
        pc_ratio.push_back(ratio(p.misses));
        oracle_ratio.push_back(o_ratio);
    }
    table.addSeparator();
    table.addRow("mean",
                 {mean(addr_acc), 0.0, 0.0, mean(addr_ratio),
                  mean(pc_acc), 0.0, 0.0, mean(pc_ratio),
                  mean(oracle_ratio)},
                 3);

    driver.report(table);
    driver.note(
        "Paper conclusion: neither the block-address- nor the "
        "PC-indexed history predictor\nreaches the accuracy needed "
        "to recover the oracle's gain — the predictor-guided\nmiss "
        "ratios sit well above the oracle's.");
    return driver.finish();
}
