/**
 * @file
 * Figure 8 — the predictor feasibility study (the paper's largely
 * negative result).  Two history-based fill-time sharing predictors —
 * indexed by block address and by fill PC — are trained online from
 * residency outcomes and scored against the oracle's fill-time label:
 * accuracy, precision, recall, and the miss delta when each predictor
 * replaces the oracle inside the sharing-aware victim filter.
 *
 * Usage: fig8_predictors [--scale=1] [--threads=8] [--llc-mb=4]
 *        [--pred-index-bits=14] [--format={text,csv,json}]
 *        [--stats-out=PATH]
 */

#include "common/table.hh"
#include "core/predictor.hh"
#include "sim/bench_driver.hh"
#include "sim/experiment.hh"

using namespace casim;

namespace {

struct PredictorRun
{
    double accuracy = 0.0;
    double precision = 0.0;
    double recall = 0.0;
    double ratio = 1.0; // misses vs plain LRU
};

PredictorRun
runPredictor(const CapturedWorkload &wl, const NextUseIndex &index,
             const StudyConfig &config, const CacheGeometry &geo,
             FillLabeler &predictor, std::uint64_t lru)
{
    OracleLabeler truth = makeOracle(index, config, geo.sizeBytes);
    LabelerEvaluator evaluated(predictor, &truth);

    ReplaySpec spec;
    spec.geo = geo;
    spec.labeler = &evaluated;
    spec.config = &config;
    const auto misses = replayMisses(wl.stream, spec);

    PredictorRun run;
    run.accuracy = evaluated.accuracy();
    run.precision = evaluated.precision();
    run.recall = evaluated.recall();
    run.ratio = lru == 0 ? 1.0
                         : static_cast<double>(misses) /
                               static_cast<double>(lru);
    return run;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchDriver driver("fig8_predictors", argc, argv);
    const StudyConfig &config = driver.config();
    const std::uint64_t llc_bytes = driver.llcBytes();
    const CacheGeometry geo = config.llcGeometry(llc_bytes);

    TablePrinter table(
        "Figure 8: fill-time sharing predictors vs the oracle, " +
            std::to_string(llc_bytes >> 20) +
            "MB LLC (acc/prec/rec vs oracle label; miss ratio vs LRU)",
        {"app", "addr_acc", "addr_prec", "addr_rec", "addr_ratio",
         "pc_acc", "pc_prec", "pc_rec", "pc_ratio", "oracle_ratio"});

    std::vector<double> addr_acc, pc_acc, addr_ratio, pc_ratio,
        oracle_ratio;
    for (const auto &info : allWorkloads()) {
        const CapturedWorkload wl = captureWorkload(info.name, config);
        const NextUseIndex &index = wl.nextUse();
        ReplaySpec lru_spec;
        lru_spec.geo = geo;
        const auto lru = replayMisses(wl.stream, lru_spec);

        AddressSharingPredictor addr(config.predictor);
        PcSharingPredictor pc(config.predictor);
        const PredictorRun a =
            runPredictor(wl, index, config, geo, addr, lru);
        const PredictorRun p =
            runPredictor(wl, index, config, geo, pc, lru);

        OracleLabeler oracle = makeOracle(index, config, llc_bytes);
        ReplaySpec aware_spec;
        aware_spec.geo = geo;
        aware_spec.labeler = &oracle;
        aware_spec.config = &config;
        const auto aware = replayMisses(wl.stream, aware_spec);
        const double o_ratio = lru == 0
                                   ? 1.0
                                   : static_cast<double>(aware) /
                                         static_cast<double>(lru);

        table.addRow(info.name,
                     {a.accuracy, a.precision, a.recall, a.ratio,
                      p.accuracy, p.precision, p.recall, p.ratio,
                      o_ratio},
                     3);
        addr_acc.push_back(a.accuracy);
        pc_acc.push_back(p.accuracy);
        addr_ratio.push_back(a.ratio);
        pc_ratio.push_back(p.ratio);
        oracle_ratio.push_back(o_ratio);
    }
    table.addSeparator();
    table.addRow("mean",
                 {mean(addr_acc), 0.0, 0.0, mean(addr_ratio),
                  mean(pc_acc), 0.0, 0.0, mean(pc_ratio),
                  mean(oracle_ratio)},
                 3);

    driver.report(table);
    driver.note(
        "Paper conclusion: neither the block-address- nor the "
        "PC-indexed history predictor\nreaches the accuracy needed "
        "to recover the oracle's gain — the predictor-guided\nmiss "
        "ratios sit well above the oracle's.");
    return driver.finish();
}
