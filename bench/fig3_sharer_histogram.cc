/**
 * @file
 * Figure 3: distribution of LLC hit volume by the number of distinct
 * cores that touch the serving block during its residency (1 / 2 /
 * 3-4 / 5-8 sharers), per application at the small LLC.
 *
 * Usage: fig3_sharer_histogram [--scale=1] [--threads=8]
 *        [--llc-small-mb=4] [--format={text,csv,json}]
 *        [--stats-out=PATH] [--daemon=PATH]
 */

#include "common/table.hh"
#include "sim/bench_driver.hh"
#include "sim/queue.hh"

using namespace casim;

int
main(int argc, char **argv)
{
    BenchDriver driver("fig3_sharer_histogram", argc, argv);
    const StudyConfig &config = driver.config();
    const unsigned threads = config.workload.threads;

    TablePrinter table(
        "Figure 3: LLC hit volume by residency sharer count, " +
            std::to_string(config.llcSmallBytes >> 20) + "MB LLC (LRU)",
        {"app", "1_core%", "2_cores%", "3-4_cores%", "5-8_cores%"});

    const auto infos = allWorkloads();
    std::vector<ExperimentRequest> requests;
    for (const auto &info : infos) {
        ExperimentRequest request;
        request.kind = "sharing";
        request.workload = info.name;
        request.config = config;
        requests.push_back(request);
    }
    const auto results = driver.service().runBatch(requests);

    std::vector<double> col[4];
    for (std::size_t w = 0; w < infos.size(); ++w) {
        const SharingSummary &sharing = results[w].sharing;

        double buckets[4] = {0, 0, 0, 0};
        double total = 0;
        for (unsigned cores = 1; cores <= threads; ++cores) {
            const auto hits =
                static_cast<double>(sharing.sharerHits[cores - 1]);
            total += hits;
            if (cores == 1)
                buckets[0] += hits;
            else if (cores == 2)
                buckets[1] += hits;
            else if (cores <= 4)
                buckets[2] += hits;
            else
                buckets[3] += hits;
        }
        std::vector<double> row;
        for (int b = 0; b < 4; ++b) {
            const double pct =
                total > 0 ? 100.0 * buckets[b] / total : 0.0;
            row.push_back(pct);
            col[b].push_back(pct);
        }
        table.addRow(infos[w].name, row, 1);
    }
    table.addSeparator();
    table.addRow("mean",
                 {mean(col[0]), mean(col[1]), mean(col[2]),
                  mean(col[3])},
                 1);

    driver.report(table);
    return driver.finish();
}
