/**
 * @file
 * Ablation A6: interaction with prefetching.  An LLC stride prefetcher
 * hides part of the miss stream; this bench checks whether the
 * sharing-aware oracle's gain over LRU survives when both run
 * together, and reports the prefetcher's own statistics.
 *
 * Usage: ablation_prefetch [--scale=1] [--threads=8] [--llc-mb=4]
 *        [--degree=2] [--format={text,csv,json}] [--stats-out=PATH]
 *        [--daemon=PATH]
 */

#include "common/table.hh"
#include "mem/prefetcher.hh"
#include "sim/bench_driver.hh"
#include "sim/queue.hh"

using namespace casim;

int
main(int argc, char **argv)
{
    BenchDriver driver("ablation_prefetch", argc, argv);
    const StudyConfig &config = driver.config();
    const std::uint64_t llc_bytes = driver.llcBytes();
    const unsigned degree = static_cast<unsigned>(
        driver.options().getUint("degree", PrefetcherConfig().degree));

    TablePrinter table(
        "A6: sharing-aware oracle under stride prefetching, " +
            std::to_string(llc_bytes >> 20) + "MB LLC (misses vs "
            "plain LRU without prefetch)",
        {"app", "lru", "lru+pf", "sa", "sa+pf", "pf_acc"});

    // Four requests per workload: plain LRU, LRU with the prefetcher,
    // the oracle-wrapped replay, and both together.
    const auto infos = allWorkloads();
    std::vector<ExperimentRequest> requests;
    for (const auto &info : infos) {
        ExperimentRequest lru;
        lru.workload = info.name;
        lru.llcBytes = llc_bytes;
        lru.config = config;
        ExperimentRequest lru_pf = lru;
        lru_pf.prefetch = true;
        lru_pf.prefetchDegree = degree;
        ExperimentRequest sa = lru;
        sa.labeler = "oracle";
        ExperimentRequest sa_pf = sa;
        sa_pf.prefetch = true;
        sa_pf.prefetchDegree = degree;
        requests.push_back(lru);
        requests.push_back(lru_pf);
        requests.push_back(sa);
        requests.push_back(sa_pf);
    }
    const auto results = driver.service().runBatch(requests);

    std::vector<double> pf_ratio, sa_ratio, sapf_ratio;
    for (std::size_t w = 0; w < infos.size(); ++w) {
        const ExperimentResult *cells = &results[w * 4];
        const std::uint64_t lru = cells[0].misses;
        if (lru == 0)
            continue;
        const double base = static_cast<double>(lru);

        table.addRow(infos[w].name,
                     {1.0, cells[1].misses / base,
                      cells[2].misses / base, cells[3].misses / base,
                      cells[1].prefetchAccuracy},
                     3);
        pf_ratio.push_back(cells[1].misses / base);
        sa_ratio.push_back(cells[2].misses / base);
        sapf_ratio.push_back(cells[3].misses / base);
    }
    table.addSeparator();
    table.addRow("mean",
                 {1.0, mean(pf_ratio), mean(sa_ratio),
                  mean(sapf_ratio), 0.0},
                 3);

    driver.report(table);
    driver.note("sa+pf below lru+pf means sharing-awareness keeps "
                "paying after prefetching\nremoves the easy "
                "(strided) misses.");
    return driver.finish();
}
