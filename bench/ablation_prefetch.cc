/**
 * @file
 * Ablation A6: interaction with prefetching.  An LLC stride prefetcher
 * hides part of the miss stream; this bench checks whether the
 * sharing-aware oracle's gain over LRU survives when both run
 * together, and reports the prefetcher's own statistics.
 *
 * Usage: ablation_prefetch [--scale=1] [--threads=8] [--llc-mb=4]
 *        [--degree=2] [--format={text,csv,json}] [--stats-out=PATH]
 */

#include "common/table.hh"
#include "mem/prefetcher.hh"
#include "sim/bench_driver.hh"
#include "sim/experiment.hh"

using namespace casim;

namespace {

std::uint64_t
runWithPrefetch(const Trace &stream, const CacheGeometry &geo,
                const StudyConfig &config, FillLabeler *labeler,
                const PrefetcherConfig &pf_config, double *accuracy)
{
    StridePrefetcher prefetcher(pf_config);
    ReplaySpec spec;
    spec.geo = geo;
    spec.labeler = labeler;
    if (labeler != nullptr)
        spec.config = &config;
    spec.prefetcher = &prefetcher;
    const auto misses = replayMisses(stream, spec);
    if (accuracy != nullptr)
        *accuracy = prefetcher.accuracy();
    return misses;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchDriver driver("ablation_prefetch", argc, argv);
    const StudyConfig &config = driver.config();
    const std::uint64_t llc_bytes = driver.llcBytes();
    const CacheGeometry geo = config.llcGeometry(llc_bytes);
    PrefetcherConfig pf_config;
    pf_config.degree = static_cast<unsigned>(
        driver.options().getUint("degree", pf_config.degree));

    TablePrinter table(
        "A6: sharing-aware oracle under stride prefetching, " +
            std::to_string(llc_bytes >> 20) + "MB LLC (misses vs "
            "plain LRU without prefetch)",
        {"app", "lru", "lru+pf", "sa", "sa+pf", "pf_acc"});

    std::vector<double> pf_ratio, sa_ratio, sapf_ratio;
    for (const auto &info : allWorkloads()) {
        const CapturedWorkload wl = captureWorkload(info.name, config);
        const NextUseIndex &index = wl.nextUse();
        ReplaySpec lru_spec;
        lru_spec.geo = geo;
        const auto lru = replayMisses(wl.stream, lru_spec);
        if (lru == 0)
            continue;
        const double base = static_cast<double>(lru);

        double accuracy = 0.0;
        const auto lru_pf = runWithPrefetch(wl.stream, geo, config,
                                            nullptr, pf_config,
                                            &accuracy);
        OracleLabeler sa_oracle = makeOracle(index, config, llc_bytes);
        ReplaySpec sa_spec = lru_spec;
        sa_spec.labeler = &sa_oracle;
        sa_spec.config = &config;
        const auto sa = replayMisses(wl.stream, sa_spec);
        OracleLabeler sapf_oracle =
            makeOracle(index, config, llc_bytes);
        const auto sa_pf = runWithPrefetch(wl.stream, geo, config,
                                           &sapf_oracle, pf_config,
                                           nullptr);

        table.addRow(info.name,
                     {1.0, lru_pf / base, sa / base, sa_pf / base,
                      accuracy},
                     3);
        pf_ratio.push_back(lru_pf / base);
        sa_ratio.push_back(sa / base);
        sapf_ratio.push_back(sa_pf / base);
    }
    table.addSeparator();
    table.addRow("mean",
                 {1.0, mean(pf_ratio), mean(sa_ratio),
                  mean(sapf_ratio), 0.0},
                 3);

    driver.report(table);
    driver.note("sa+pf below lru+pf means sharing-awareness keeps "
                "paying after prefetching\nremoves the easy "
                "(strided) misses.");
    return driver.finish();
}
