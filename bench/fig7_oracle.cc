/**
 * @file
 * Figure 7 — the headline oracle study.  The generic sharing-aware
 * oracle labels every fill with whether the block will be actively
 * shared in the near future; the victim filter composed with a base
 * policy protects those fills.  The paper reports the oracle composed
 * with LRU cutting misses by ~6% on average at 4 MB and ~10% at 8 MB;
 * we additionally compose it with SRRIP and DRRIP to show the wrapper
 * is policy-generic.
 *
 * Usage: fig7_oracle [--scale=1] [--threads=8] [--window-factor=4]
 *        [--protection-rounds=128] [--post-rounds=0] [--jobs=N]
 *        [--format={text,csv,json}] [--stats-out=PATH]
 */

#include "common/table.hh"
#include "sim/bench_driver.hh"
#include "sim/experiment.hh"

using namespace casim;

int
main(int argc, char **argv)
{
    BenchDriver driver("fig7_oracle", argc, argv);
    const StudyConfig &config = driver.config();
    const std::vector<std::string> bases{"lru", "srrip", "drrip"};

    std::vector<std::string> headers{"app"};
    for (const auto &base : bases) {
        headers.push_back("sa+" + base + "_4mb");
        headers.push_back("sa+" + base + "_8mb");
    }
    TablePrinter table(
        "Figure 7: sharing-aware oracle misses normalised to the plain "
        "base policy",
        headers);

    ParallelRunner &runner = driver.runner();
    const auto captured = captureAllWorkloads(config, runner);

    // The next-use index and label planes of a workload are shared
    // read-only by all of its cells; warm them in parallel so no
    // replay cell stalls on a build or a label sweep.
    warmSharingOracle(captured, config, runner);

    // One cell per (workload, base policy, LLC capacity); each cell
    // owns its oracle, wrapper and both replays.  Slot layout is
    // [workload][base][capacity].
    const std::vector<std::uint64_t> capacities{config.llcSmallBytes,
                                                config.llcLargeBytes};
    const std::size_t cells_per_wl = bases.size() * capacities.size();
    const auto ratios = runner.map<double>(
        captured.size() * cells_per_wl, [&](std::size_t cell) {
            const std::size_t w = cell / cells_per_wl;
            const std::size_t b =
                (cell % cells_per_wl) / capacities.size();
            const std::uint64_t bytes =
                capacities[cell % capacities.size()];
            const CapturedWorkload &wl = captured[w];
            const NextUseIndex &index = wl.nextUse();

            OracleLabeler oracle = makeOracle(index, config, bytes);
            ReplaySpec plain_spec;
            plain_spec.policy = bases[b];
            plain_spec.geo = config.llcGeometry(bytes);
            const auto plain = replayMisses(wl.stream, plain_spec);

            ReplaySpec aware_spec = plain_spec;
            aware_spec.labeler = &oracle;
            aware_spec.config = &config;
            const auto aware = replayMisses(wl.stream, aware_spec);
            return plain == 0 ? 1.0
                              : static_cast<double>(aware) /
                                    static_cast<double>(plain);
        });

    // columns[base][size] -> per-app ratios.
    std::vector<std::vector<std::vector<double>>> columns(
        bases.size(), std::vector<std::vector<double>>(2));
    for (std::size_t w = 0; w < captured.size(); ++w) {
        std::vector<double> row;
        for (std::size_t b = 0; b < bases.size(); ++b) {
            for (std::size_t k = 0; k < capacities.size(); ++k) {
                const double ratio =
                    ratios[w * cells_per_wl + b * capacities.size() +
                           k];
                row.push_back(ratio);
                columns[b][k].push_back(ratio);
            }
        }
        table.addRow(captured[w].info.name, row, 3);
    }
    table.addSeparator();
    std::vector<double> means;
    std::vector<double> reductions;
    for (std::size_t b = 0; b < bases.size(); ++b) {
        for (int k = 0; k < 2; ++k) {
            means.push_back(mean(columns[b][k]));
            reductions.push_back(100.0 * (1.0 - mean(columns[b][k])));
        }
    }
    table.addRow("mean", means, 3);
    table.addRow("reduction%", reductions, 1);

    driver.report(table);
    driver.note(
        "Paper headline: sharing-aware oracle over LRU reduces LLC "
        "misses ~6% (4MB) and\n~10% (8MB) on average; lower ratios "
        "are better.");
    return driver.finish();
}
