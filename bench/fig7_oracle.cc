/**
 * @file
 * Figure 7 — the headline oracle study.  The generic sharing-aware
 * oracle labels every fill with whether the block will be actively
 * shared in the near future; the victim filter composed with a base
 * policy protects those fills.  The paper reports the oracle composed
 * with LRU cutting misses by ~6% on average at 4 MB and ~10% at 8 MB;
 * we additionally compose it with SRRIP and DRRIP to show the wrapper
 * is policy-generic.
 *
 * Usage: fig7_oracle [--scale=1] [--threads=8] [--window-factor=4]
 *        [--protection-rounds=128] [--post-rounds=0] [--jobs=N]
 *        [--format={text,csv,json}] [--stats-out=PATH] [--daemon=PATH]
 */

#include "common/table.hh"
#include "sim/bench_driver.hh"
#include "sim/queue.hh"

using namespace casim;

int
main(int argc, char **argv)
{
    BenchDriver driver("fig7_oracle", argc, argv);
    const StudyConfig &config = driver.config();
    const std::vector<std::string> bases{"lru", "srrip", "drrip"};

    std::vector<std::string> headers{"app"};
    for (const auto &base : bases) {
        headers.push_back("sa+" + base + "_4mb");
        headers.push_back("sa+" + base + "_8mb");
    }
    TablePrinter table(
        "Figure 7: sharing-aware oracle misses normalised to the plain "
        "base policy",
        headers);

    // Two requests per (workload, base policy, LLC capacity): the
    // plain replay and the oracle-wrapped one.  The service warms each
    // workload's next-use index and label planes before the cells run,
    // so no replay stalls on a build (the old warmSharingOracle
    // discipline, now behind the API).
    const auto infos = allWorkloads();
    const std::vector<std::uint64_t> capacities{config.llcSmallBytes,
                                                config.llcLargeBytes};
    const std::size_t cells_per_wl = bases.size() * capacities.size();
    std::vector<ExperimentRequest> requests;
    for (const auto &info : infos) {
        for (const auto &base : bases) {
            for (const std::uint64_t bytes : capacities) {
                ExperimentRequest plain;
                plain.workload = info.name;
                plain.policy = base;
                plain.llcBytes = bytes;
                plain.config = config;
                ExperimentRequest aware = plain;
                aware.labeler = "oracle";
                requests.push_back(plain);
                requests.push_back(aware);
            }
        }
    }
    const auto results = driver.service().runBatch(requests);
    const auto ratio_of = [&](std::size_t cell) {
        const std::uint64_t plain = results[cell * 2].misses;
        const std::uint64_t aware = results[cell * 2 + 1].misses;
        return plain == 0 ? 1.0
                          : static_cast<double>(aware) /
                                static_cast<double>(plain);
    };

    // columns[base][size] -> per-app ratios.
    std::vector<std::vector<std::vector<double>>> columns(
        bases.size(), std::vector<std::vector<double>>(2));
    for (std::size_t w = 0; w < infos.size(); ++w) {
        std::vector<double> row;
        for (std::size_t b = 0; b < bases.size(); ++b) {
            for (std::size_t k = 0; k < capacities.size(); ++k) {
                const double ratio = ratio_of(
                    w * cells_per_wl + b * capacities.size() + k);
                row.push_back(ratio);
                columns[b][k].push_back(ratio);
            }
        }
        table.addRow(infos[w].name, row, 3);
    }
    table.addSeparator();
    std::vector<double> means;
    std::vector<double> reductions;
    for (std::size_t b = 0; b < bases.size(); ++b) {
        for (int k = 0; k < 2; ++k) {
            means.push_back(mean(columns[b][k]));
            reductions.push_back(100.0 * (1.0 - mean(columns[b][k])));
        }
    }
    table.addRow("mean", means, 3);
    table.addRow("reduction%", reductions, 1);

    driver.report(table);
    driver.note(
        "Paper headline: sharing-aware oracle over LRU reduces LLC "
        "misses ~6% (4MB) and\n~10% (8MB) on average; lower ratios "
        "are better.");
    return driver.finish();
}
