/**
 * @file
 * Ablation A3: predictor table size and counter-threshold sweep.  The
 * paper's negative result — history predictors do not reach useful
 * accuracy — should be robust to giving the predictor more state; this
 * bench verifies that growing the table from 1K to 256K entries moves
 * mean accuracy only marginally.
 *
 * Usage: ablation_predictor_size [--scale=1] [--threads=8]
 *        [--llc-mb=4] [--format={text,csv,json}] [--stats-out=PATH]
 *        [--daemon=PATH]
 */

#include "common/table.hh"
#include "sim/bench_driver.hh"
#include "sim/queue.hh"

using namespace casim;

int
main(int argc, char **argv)
{
    BenchDriver driver("ablation_predictor_size", argc, argv);
    const StudyConfig &config = driver.config();
    const std::uint64_t llc_bytes = driver.llcBytes();
    const std::vector<unsigned> index_bits{10, 12, 14, 16, 18};

    TablePrinter table(
        "A3: predictor accuracy vs table size (mean across workloads), "
        + std::to_string(llc_bytes >> 20) + "MB LLC",
        {"entries", "addr_acc", "addr_rec", "pc_acc", "pc_rec"});

    // Two evaluated-predictor requests per (table size, workload);
    // the table size is a config point.
    const auto infos = allWorkloads();
    std::vector<ExperimentRequest> requests;
    for (const unsigned bits : index_bits) {
        for (const auto &info : infos) {
            ExperimentRequest addr;
            addr.workload = info.name;
            addr.llcBytes = llc_bytes;
            addr.labeler = "addr-pred";
            addr.evaluate = true;
            addr.config = config;
            addr.config.predictor.indexBits = bits;
            ExperimentRequest pc = addr;
            pc.labeler = "pc-pred";
            requests.push_back(addr);
            requests.push_back(pc);
        }
    }
    const auto results = driver.service().runBatch(requests);

    for (std::size_t b = 0; b < index_bits.size(); ++b) {
        std::vector<double> a_acc, a_rec, p_acc, p_rec;
        for (std::size_t w = 0; w < infos.size(); ++w) {
            const ExperimentResult *cells =
                &results[(b * infos.size() + w) * 2];
            a_acc.push_back(cells[0].accuracy);
            a_rec.push_back(cells[0].recall);
            p_acc.push_back(cells[1].accuracy);
            p_rec.push_back(cells[1].recall);
        }
        table.addRow(std::to_string(1u << index_bits[b]),
                     {mean(a_acc), mean(a_rec), mean(p_acc),
                      mean(p_rec)},
                     3);
    }

    driver.report(table);
    return driver.finish();
}
