/**
 * @file
 * Ablation A3: predictor table size and counter-threshold sweep.  The
 * paper's negative result — history predictors do not reach useful
 * accuracy — should be robust to giving the predictor more state; this
 * bench verifies that growing the table from 1K to 256K entries moves
 * mean accuracy only marginally.
 *
 * Usage: ablation_predictor_size [--scale=1] [--threads=8]
 *        [--llc-mb=4] [--csv]
 */

#include <iostream>

#include "common/options.hh"
#include "common/table.hh"
#include "core/predictor.hh"
#include "core/sharing_aware.hh"
#include "mem/repl/factory.hh"
#include "sim/experiment.hh"
#include "sim/parallel.hh"
#include "sim/stream_sim.hh"

using namespace casim;

namespace {

/** Mean fill-time accuracy/recall of a predictor across workloads. */
struct SweepPoint
{
    double addrAccuracy = 0.0;
    double addrRecall = 0.0;
    double pcAccuracy = 0.0;
    double pcRecall = 0.0;
};

double
evaluate(const CapturedWorkload &wl, const NextUseIndex &index,
         const StudyConfig &config, const CacheGeometry &geo,
         SeqNo window, FillLabeler &predictor, double *recall_out)
{
    OracleLabeler truth = makeOracle(index, config, geo.sizeBytes);
    LabelerEvaluator evaluated(predictor, &truth);
    auto wrapped = std::make_unique<SharingAwareWrapper>(
        makePolicyFactory("lru")(geo.numSets(), geo.ways),
        config.protectionRounds, config.postShareRounds,
        config.protectionQuota, config.dueling);
    StreamSim sim(wl.stream, geo, std::move(wrapped));
    sim.setLabeler(&evaluated);
    sim.run();
    *recall_out = evaluated.recall();
    return evaluated.accuracy();
}

} // namespace

int
main(int argc, char **argv)
{
    const Options options(argc, argv);
    const StudyConfig config = StudyConfig::fromOptions(options);
    const std::uint64_t llc_bytes =
        options.getUint("llc-mb", config.llcSmallBytes >> 20) << 20;
    const CacheGeometry geo = config.llcGeometry(llc_bytes);
    const SeqNo window = config.oracleWindow(llc_bytes);
    const std::vector<unsigned> index_bits{10, 12, 14, 16, 18};

    ParallelRunner runner(options.jobs());
    const auto captured = captureAllWorkloads(config, runner);

    TablePrinter table(
        "A3: predictor accuracy vs table size (mean across workloads), "
        + std::to_string(llc_bytes >> 20) + "MB LLC",
        {"entries", "addr_acc", "addr_rec", "pc_acc", "pc_rec"});

    for (const unsigned bits : index_bits) {
        PredictorConfig pc_config = config.predictor;
        pc_config.indexBits = bits;

        std::vector<double> a_acc, a_rec, p_acc, p_rec;
        for (const auto &wl : captured) {
            const NextUseIndex &index = wl.nextUse();
            AddressSharingPredictor addr(pc_config);
            PcSharingPredictor pc(pc_config);
            double recall = 0.0;
            a_acc.push_back(evaluate(wl, index, config, geo, window,
                                     addr, &recall));
            a_rec.push_back(recall);
            p_acc.push_back(evaluate(wl, index, config, geo, window,
                                     pc, &recall));
            p_rec.push_back(recall);
        }
        table.addRow(std::to_string(1u << bits),
                     {mean(a_acc), mean(a_rec), mean(p_acc),
                      mean(p_rec)},
                     3);
    }

    if (options.has("csv"))
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    return 0;
}
