/**
 * @file
 * Ablation A3: predictor table size and counter-threshold sweep.  The
 * paper's negative result — history predictors do not reach useful
 * accuracy — should be robust to giving the predictor more state; this
 * bench verifies that growing the table from 1K to 256K entries moves
 * mean accuracy only marginally.
 *
 * Usage: ablation_predictor_size [--scale=1] [--threads=8]
 *        [--llc-mb=4] [--format={text,csv,json}] [--stats-out=PATH]
 */

#include "common/table.hh"
#include "core/predictor.hh"
#include "sim/bench_driver.hh"
#include "sim/experiment.hh"

using namespace casim;

namespace {

double
evaluate(const CapturedWorkload &wl, const NextUseIndex &index,
         const StudyConfig &config, const CacheGeometry &geo,
         FillLabeler &predictor, double *recall_out)
{
    OracleLabeler truth = makeOracle(index, config, geo.sizeBytes);
    LabelerEvaluator evaluated(predictor, &truth);
    ReplaySpec spec;
    spec.geo = geo;
    spec.labeler = &evaluated;
    spec.config = &config;
    replayMisses(wl.stream, spec);
    *recall_out = evaluated.recall();
    return evaluated.accuracy();
}

} // namespace

int
main(int argc, char **argv)
{
    BenchDriver driver("ablation_predictor_size", argc, argv);
    const StudyConfig &config = driver.config();
    const std::uint64_t llc_bytes = driver.llcBytes();
    const CacheGeometry geo = config.llcGeometry(llc_bytes);
    const std::vector<unsigned> index_bits{10, 12, 14, 16, 18};

    ParallelRunner &runner = driver.runner();
    const auto captured = captureAllWorkloads(config, runner);

    TablePrinter table(
        "A3: predictor accuracy vs table size (mean across workloads), "
        + std::to_string(llc_bytes >> 20) + "MB LLC",
        {"entries", "addr_acc", "addr_rec", "pc_acc", "pc_rec"});

    for (const unsigned bits : index_bits) {
        PredictorConfig pc_config = config.predictor;
        pc_config.indexBits = bits;

        std::vector<double> a_acc, a_rec, p_acc, p_rec;
        for (const auto &wl : captured) {
            const NextUseIndex &index = wl.nextUse();
            AddressSharingPredictor addr(pc_config);
            PcSharingPredictor pc(pc_config);
            double recall = 0.0;
            a_acc.push_back(evaluate(wl, index, config, geo, addr,
                                     &recall));
            a_rec.push_back(recall);
            p_acc.push_back(evaluate(wl, index, config, geo, pc,
                                     &recall));
            p_rec.push_back(recall);
        }
        table.addRow(std::to_string(1u << bits),
                     {mean(a_acc), mean(a_rec), mean(p_acc),
                      mean(p_rec)},
                     3);
    }

    driver.report(table);
    return driver.finish();
}
