/**
 * @file
 * Figure 6: sharing-awareness enjoyed by each policy relative to OPT.
 * At every eviction the oracle checks whether the victim's residency
 * would still have been shared (future references complete a >= 2 core
 * sharer set) while an unshared — or fully dead — candidate sat in the
 * same set.  The rate of such "sharing-awareness mistakes" is reported
 * per policy; OPT's rate calibrates the floor.
 *
 * Usage: fig6_sharing_awareness [--scale=1] [--threads=8]
 *        [--llc-mb=4] [--format={text,csv,json}] [--stats-out=PATH]
 */

#include "common/table.hh"
#include "core/awareness.hh"
#include "mem/repl/factory.hh"
#include "mem/repl/opt.hh"
#include "sim/bench_driver.hh"
#include "sim/experiment.hh"
#include "sim/stream_sim.hh"

using namespace casim;

namespace {

struct Rates
{
    double mistake = 0.0;
    double shared_victim = 0.0;
};

Rates
scorePolicy(const Trace &stream, const NextUseIndex &index,
            const CacheGeometry &geo, SeqNo window,
            std::unique_ptr<ReplPolicy> policy)
{
    StreamSim sim(stream, geo, std::move(policy));
    AwarenessScorer scorer(index, window);
    sim.setAwarenessScorer(&scorer);
    sim.run();
    return Rates{scorer.mistakeRate(), scorer.sharedVictimRate()};
}

} // namespace

int
main(int argc, char **argv)
{
    BenchDriver driver("fig6_sharing_awareness", argc, argv);
    const StudyConfig &config = driver.config();
    const std::uint64_t llc_bytes = driver.llcBytes();
    const CacheGeometry geo = config.llcGeometry(llc_bytes);
    const SeqNo window = config.oracleWindow(llc_bytes);

    const std::vector<std::string> policies{"lru",  "nru",  "srrip",
                                            "drrip", "ship", "tadrrip"};
    std::vector<std::string> headers{"app"};
    for (const auto &p : policies)
        headers.push_back(p + "%");
    headers.push_back("opt%");

    TablePrinter table(
        "Figure 6: sharing-awareness mistakes per eviction (shared "
        "victim while unshared candidate present), " +
            std::to_string(llc_bytes >> 20) + "MB LLC",
        headers);

    std::vector<std::vector<double>> columns(policies.size() + 1);
    for (const auto &info : allWorkloads()) {
        const CapturedWorkload wl = captureWorkload(info.name, config);
        const NextUseIndex &index = wl.nextUse();

        std::vector<double> row;
        for (std::size_t p = 0; p < policies.size(); ++p) {
            const auto factory = requirePolicyFactory(policies[p]);
            const Rates rates =
                scorePolicy(wl.stream, index, geo, window,
                            factory(geo.numSets(), geo.ways));
            row.push_back(100.0 * rates.mistake);
            columns[p].push_back(100.0 * rates.mistake);
        }
        const Rates opt_rates = scorePolicy(
            wl.stream, index, geo, window,
            std::make_unique<OptPolicy>(geo.numSets(), geo.ways,
                                        index));
        row.push_back(100.0 * opt_rates.mistake);
        columns[policies.size()].push_back(100.0 * opt_rates.mistake);
        table.addRow(info.name, row, 2);
    }
    table.addSeparator();
    std::vector<double> means;
    for (const auto &column : columns)
        means.push_back(mean(column));
    table.addRow("mean", means, 2);

    driver.report(table);
    return driver.finish();
}
