/**
 * @file
 * Figure 6: sharing-awareness enjoyed by each policy relative to OPT.
 * At every eviction the oracle checks whether the victim's residency
 * would still have been shared (future references complete a >= 2 core
 * sharer set) while an unshared — or fully dead — candidate sat in the
 * same set.  The rate of such "sharing-awareness mistakes" is reported
 * per policy; OPT's rate calibrates the floor.
 *
 * Usage: fig6_sharing_awareness [--scale=1] [--threads=8]
 *        [--llc-mb=4] [--format={text,csv,json}] [--stats-out=PATH]
 *        [--daemon=PATH]
 */

#include "common/table.hh"
#include "sim/bench_driver.hh"
#include "sim/queue.hh"

using namespace casim;

int
main(int argc, char **argv)
{
    BenchDriver driver("fig6_sharing_awareness", argc, argv);
    const StudyConfig &config = driver.config();
    const std::uint64_t llc_bytes = driver.llcBytes();

    const std::vector<std::string> policies{"lru",  "nru",  "srrip",
                                            "drrip", "ship", "tadrrip"};
    std::vector<std::string> headers{"app"};
    for (const auto &p : policies)
        headers.push_back(p + "%");
    headers.push_back("opt%");

    TablePrinter table(
        "Figure 6: sharing-awareness mistakes per eviction (shared "
        "victim while unshared candidate present), " +
            std::to_string(llc_bytes >> 20) + "MB LLC",
        headers);

    // One awareness-scored replay per (workload, policy), OPT last.
    const auto infos = allWorkloads();
    const std::size_t num_cells = policies.size() + 1;
    std::vector<ExperimentRequest> requests;
    for (const auto &info : infos) {
        for (std::size_t p = 0; p < num_cells; ++p) {
            ExperimentRequest request;
            request.kind = "awareness";
            request.workload = info.name;
            request.llcBytes = llc_bytes;
            request.policy =
                p < policies.size() ? policies[p] : "opt";
            request.config = config;
            requests.push_back(request);
        }
    }
    const auto results = driver.service().runBatch(requests);

    std::vector<std::vector<double>> columns(num_cells);
    for (std::size_t w = 0; w < infos.size(); ++w) {
        std::vector<double> row;
        for (std::size_t p = 0; p < num_cells; ++p) {
            const double pct =
                100.0 * results[w * num_cells + p].mistakeRate;
            row.push_back(pct);
            columns[p].push_back(pct);
        }
        table.addRow(infos[w].name, row, 2);
    }
    table.addSeparator();
    std::vector<double> means;
    for (const auto &column : columns)
        means.push_back(mean(column));
    table.addRow("mean", means, 2);

    driver.report(table);
    return driver.finish();
}
