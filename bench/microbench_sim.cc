/**
 * @file
 * Google-benchmark microbenchmarks of the simulator's hot paths:
 * cache demand accesses under each policy, next-use index
 * construction, oracle labeling, trace generation, and the full
 * hierarchy.  These guard the simulation throughput that the
 * experiment binaries depend on.
 */

#include <benchmark/benchmark.h>

#include "common/rng.hh"
#include "core/oracle.hh"
#include "core/sharing_aware.hh"
#include "mem/hierarchy.hh"
#include "mem/repl/factory.hh"
#include "mem/repl/opt.hh"
#include "sim/stream_sim.hh"
#include "wgen/registry.hh"

namespace casim {
namespace {

/** A reusable random trace: 256K references over a 64K-block space. */
const Trace &
randomTrace()
{
    static const Trace trace = [] {
        Rng rng(42);
        Trace t("micro", 8);
        t.reserve(256 * 1024);
        for (int i = 0; i < 256 * 1024; ++i) {
            t.append(rng.below(65536) * kBlockBytes,
                     0x400 + rng.below(64) * 4,
                     static_cast<CoreId>(rng.below(8)),
                     rng.chance(0.3));
        }
        return t;
    }();
    return trace;
}

CacheGeometry
microGeometry()
{
    return CacheGeometry{1ULL << 20, 16, kBlockBytes}; // 1 MB
}

void
BM_StreamSimPolicy(benchmark::State &state, const std::string &policy)
{
    const Trace &trace = randomTrace();
    const CacheGeometry geo = microGeometry();
    for (auto _ : state) {
        const auto factory = makePolicyFactory(policy);
        StreamSim sim(trace, geo, factory(geo.numSets(), geo.ways));
        sim.run();
        benchmark::DoNotOptimize(sim.misses());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(trace.size()));
}

void
BM_StreamSimOpt(benchmark::State &state)
{
    const Trace &trace = randomTrace();
    const CacheGeometry geo = microGeometry();
    const NextUseIndex index(trace);
    for (auto _ : state) {
        StreamSim sim(trace, geo,
                      std::make_unique<OptPolicy>(geo.numSets(),
                                                  geo.ways, index));
        sim.run();
        benchmark::DoNotOptimize(sim.misses());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(trace.size()));
}

void
BM_StreamSimOracleWrapped(benchmark::State &state)
{
    const Trace &trace = randomTrace();
    const CacheGeometry geo = microGeometry();
    const NextUseIndex index(trace);
    for (auto _ : state) {
        OracleLabeler oracle(index, 4 * (geo.sizeBytes / kBlockBytes));
        auto wrapped = std::make_unique<SharingAwareWrapper>(
            makePolicyFactory("lru")(geo.numSets(), geo.ways), 256);
        StreamSim sim(trace, geo, std::move(wrapped));
        sim.setLabeler(&oracle);
        sim.run();
        benchmark::DoNotOptimize(sim.misses());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(trace.size()));
}

void
BM_NextUseIndexBuild(benchmark::State &state)
{
    const Trace &trace = randomTrace();
    for (auto _ : state) {
        NextUseIndex index(trace);
        benchmark::DoNotOptimize(index.size());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(trace.size()));
}

void
BM_TraceGeneration(benchmark::State &state)
{
    WorkloadParams params;
    params.threads = 8;
    params.scale = 0.05;
    for (auto _ : state) {
        const Trace trace = makeWorkloadTrace("ocean", params);
        benchmark::DoNotOptimize(trace.size());
    }
}

void
BM_HierarchyRun(benchmark::State &state)
{
    const Trace &trace = randomTrace();
    HierarchyConfig config;
    config.numCores = 8;
    config.llc = microGeometry();
    for (auto _ : state) {
        Hierarchy hierarchy(config, makePolicyFactory("lru"));
        hierarchy.run(trace);
        hierarchy.finish();
        benchmark::DoNotOptimize(hierarchy.llcSeq());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(trace.size()));
}

BENCHMARK_CAPTURE(BM_StreamSimPolicy, lru, "lru");
BENCHMARK_CAPTURE(BM_StreamSimPolicy, srrip, "srrip");
BENCHMARK_CAPTURE(BM_StreamSimPolicy, drrip, "drrip");
BENCHMARK_CAPTURE(BM_StreamSimPolicy, ship, "ship");
BENCHMARK_CAPTURE(BM_StreamSimPolicy, dip, "dip");
BENCHMARK(BM_StreamSimOpt);
BENCHMARK(BM_StreamSimOracleWrapped);
BENCHMARK(BM_NextUseIndexBuild);
BENCHMARK(BM_TraceGeneration);
BENCHMARK(BM_HierarchyRun);

} // namespace
} // namespace casim

BENCHMARK_MAIN();
