/**
 * @file
 * Google-benchmark microbenchmarks of the simulator's hot paths:
 * cache demand accesses under each policy, next-use index
 * construction, oracle labeling, trace generation, and the full
 * hierarchy.  These guard the simulation throughput that the
 * experiment binaries depend on.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/simd.hh"
#include "core/oracle.hh"
#include "core/sharing_aware.hh"
#include "mem/hierarchy.hh"
#include "mem/repl/factory.hh"
#include "mem/repl/opt.hh"
#include "sim/parallel.hh"
#include "sim/sharded_sim.hh"
#include "sim/stream_sim.hh"
#include "wgen/registry.hh"

namespace casim {
namespace {

/** A reusable random trace: 256K references over a 64K-block space. */
const Trace &
randomTrace()
{
    static const Trace trace = [] {
        Rng rng(42);
        Trace t("micro", 8);
        t.reserve(256 * 1024);
        for (int i = 0; i < 256 * 1024; ++i) {
            t.append(rng.below(65536) * kBlockBytes,
                     0x400 + rng.below(64) * 4,
                     static_cast<CoreId>(rng.below(8)),
                     rng.chance(0.3));
        }
        return t;
    }();
    return trace;
}

CacheGeometry
microGeometry()
{
    return CacheGeometry{1ULL << 20, 16, kBlockBytes}; // 1 MB
}

/**
 * A cache filled to capacity: block (way * numSets + set) sits in set
 * `set`, so every set holds ways distinct tags and probes for any
 * in-range address hit.
 */
std::unique_ptr<Cache>
makeFilledCache(const CacheGeometry &geo)
{
    auto cache = std::make_unique<Cache>(
        "micro", geo, requirePolicyFactory("lru")(geo.numSets(), geo.ways));
    const unsigned sets = geo.numSets();
    SeqNo seq = 0;
    for (unsigned way = 0; way < geo.ways; ++way) {
        for (unsigned set = 0; set < sets; ++set) {
            const Addr addr =
                (static_cast<Addr>(way) * sets + set) * geo.blockBytes;
            ReplContext ctx{addr, 0x400, 0, false, seq++, false};
            cache->fill(ctx);
        }
    }
    return cache;
}

/**
 * Probe every address in `probes` the way the replay kernel does:
 * software-prefetching the set state `kProbeLookahead` probes ahead so
 * the tag-row loads overlap instead of serializing on memory latency.
 *
 * @return Number of probes that hit.
 */
std::uint64_t
probeBatched(Cache &cache, const std::vector<Addr> &probes)
{
    constexpr std::size_t kProbeLookahead = 8;
    const std::size_t n = probes.size();
    for (std::size_t i = 0; i < std::min(kProbeLookahead, n); ++i)
        cache.prefetchSet(cache.setIndex(probes[i]));
    std::uint64_t found = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if (i + kProbeLookahead < n)
            cache.prefetchSet(
                cache.setIndex(probes[i + kProbeLookahead]));
        found += cache.probe(probes[i]) != nullptr ? 1 : 0;
    }
    return found;
}

void
BM_TagLookupHit(benchmark::State &state)
{
    // 4 MB of tag state: the probe stream walks far more sets than fit
    // in L1/L2, so the scan's memory footprint dominates, as it does in
    // the replay hot loop.  Probes go through the same
    // prefetch-ahead pattern the batched replay loop uses.
    const CacheGeometry geo{4ULL << 20, 16, kBlockBytes};
    const auto cache = makeFilledCache(geo);
    const unsigned sets = geo.numSets();
    Rng rng(7);
    std::vector<Addr> probes(1 << 16);
    for (auto &addr : probes)
        addr = (static_cast<Addr>(rng.below(geo.ways)) * sets +
                rng.below(sets)) *
               geo.blockBytes;
    for (auto _ : state) {
        std::uint64_t found = probeBatched(*cache, probes);
        benchmark::DoNotOptimize(found);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(probes.size()));
}

void
BM_TagLookupMiss(benchmark::State &state)
{
    // Every probe misses in a full set: the worst case, a complete
    // way scan per lookup.
    const CacheGeometry geo{4ULL << 20, 16, kBlockBytes};
    const auto cache = makeFilledCache(geo);
    const unsigned sets = geo.numSets();
    Rng rng(9);
    std::vector<Addr> probes(1 << 16);
    for (auto &addr : probes)
        addr = (static_cast<Addr>(geo.ways + rng.below(64)) * sets +
                rng.below(sets)) *
               geo.blockBytes;
    for (auto _ : state) {
        std::uint64_t found = probeBatched(*cache, probes);
        benchmark::DoNotOptimize(found);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(probes.size()));
}

void
BM_FillEvict(benchmark::State &state)
{
    // Steady-state fills into a full cache: each new tag evicts an LRU
    // victim.  Covers the fill-path set scan (and, in paranoid builds,
    // the duplicate-residency assertion).
    const CacheGeometry geo = microGeometry();
    auto cache = makeFilledCache(geo);
    const unsigned sets = geo.numSets();
    Rng rng(11);
    std::vector<Addr> fills(1 << 16);
    for (auto &addr : fills)
        addr = (static_cast<Addr>(rng.below(4 * geo.ways)) * sets +
                rng.below(sets)) *
               geo.blockBytes;
    SeqNo seq = static_cast<SeqNo>(geo.numSets()) * geo.ways;
    for (auto _ : state) {
        for (const Addr addr : fills) {
            ReplContext ctx{addr, 0x400, 0, false, seq++, false};
            if (cache->probe(addr) != nullptr)
                continue;
            cache->fill(ctx);
        }
        benchmark::DoNotOptimize(cache->validBlocks());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(fills.size()));
}

void
BM_StreamSimPolicy(benchmark::State &state, const std::string &policy)
{
    const Trace &trace = randomTrace();
    const CacheGeometry geo = microGeometry();
    for (auto _ : state) {
        const auto factory = requirePolicyFactory(policy);
        StreamSim sim(trace, geo, factory(geo.numSets(), geo.ways));
        sim.run();
        benchmark::DoNotOptimize(sim.misses());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(trace.size()));
}

void
BM_StreamSimBatched(benchmark::State &state)
{
    // BM_StreamSimPolicy/lru with an explicit batch window: arg = the
    // window (0 = the legacy unbatched loop).  The 0-vs-default spread
    // is the speedup the software-pipelined replay kernel buys; larger
    // args show where the window stops paying.
    const Trace &trace = randomTrace();
    const CacheGeometry geo = microGeometry();
    const auto window = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        const auto factory = requirePolicyFactory("lru");
        StreamSim sim(trace, geo, factory(geo.numSets(), geo.ways));
        sim.setBatchWindow(window);
        sim.run();
        benchmark::DoNotOptimize(sim.misses());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(trace.size()));
}

void
BM_StreamSimSharded(benchmark::State &state)
{
    // The sharded engine against BM_StreamSimPolicy/lru on the same
    // stream: arg = shard count.  The runner lives outside the timed
    // region (a bench binary constructs its pool once); the timed work
    // is the partition, the K shard replays and the stat merge.
    const Trace &trace = randomTrace();
    const CacheGeometry geo = microGeometry();
    const auto shards = static_cast<unsigned>(state.range(0));
    ParallelRunner runner(shards);
    for (auto _ : state) {
        ShardedStreamSim sim(trace, geo, shards,
                             requirePolicyFactory("lru"));
        sim.run(&runner);
        benchmark::DoNotOptimize(sim.misses());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(trace.size()));
}

void
BM_StreamSimOpt(benchmark::State &state)
{
    const Trace &trace = randomTrace();
    const CacheGeometry geo = microGeometry();
    const NextUseIndex index(trace);
    for (auto _ : state) {
        StreamSim sim(trace, geo,
                      std::make_unique<OptPolicy>(geo.numSets(),
                                                  geo.ways, index));
        sim.run();
        benchmark::DoNotOptimize(sim.misses());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(trace.size()));
}

void
BM_StreamSimOracleWrapped(benchmark::State &state)
{
    const Trace &trace = randomTrace();
    const CacheGeometry geo = microGeometry();
    const NextUseIndex index(trace);
    for (auto _ : state) {
        OracleLabeler oracle(index, 4 * (geo.sizeBytes / kBlockBytes));
        auto wrapped = std::make_unique<SharingAwareWrapper>(
            requirePolicyFactory("lru")(geo.numSets(), geo.ways), 256);
        StreamSim sim(trace, geo, std::move(wrapped));
        sim.setLabeler(&oracle);
        sim.run();
        benchmark::DoNotOptimize(sim.misses());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(trace.size()));
}

void
BM_NextUseIndexBuild(benchmark::State &state)
{
    const Trace &trace = randomTrace();
    for (auto _ : state) {
        NextUseIndex index(trace);
        benchmark::DoNotOptimize(index.size());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(trace.size()));
}

void
BM_LabelPlaneBuild(benchmark::State &state)
{
    // One uncached O(n) two-pointer sweep over the whole trace: the
    // cost a cold run pays per distinct (window, near-window) pair.
    const Trace &trace = randomTrace();
    const NextUseIndex index(trace);
    const SeqNo window =
        4 * (microGeometry().sizeBytes / kBlockBytes);
    for (auto _ : state) {
        const auto plane = index.computeLabelPlane(window, window);
        benchmark::DoNotOptimize(plane.codes.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(trace.size()));
}

void
BM_OracleLabel(benchmark::State &state)
{
    // Steady-state fill labeling: every trace position asked through
    // predictShared(), the replay's per-fill cost.  The plane is
    // memoized on the index, so the timed region measures lookups,
    // not the sweep (BM_LabelPlaneBuild covers that).
    const Trace &trace = randomTrace();
    const NextUseIndex index(trace);
    const SeqNo window =
        4 * (microGeometry().sizeBytes / kBlockBytes);
    for (auto _ : state) {
        OracleLabeler oracle(index, window);
        std::uint64_t shared = 0;
        SeqNo seq = 0;
        for (const MemAccess &access : trace) {
            ReplContext fill{access.blockAddr(), access.pc,
                             access.core, access.isWrite, seq++,
                             false};
            shared += oracle.predictShared(fill) ? 1 : 0;
        }
        benchmark::DoNotOptimize(shared);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(trace.size()));
}

void
BM_TraceGeneration(benchmark::State &state)
{
    WorkloadParams params;
    params.threads = 8;
    params.scale = 0.05;
    for (auto _ : state) {
        const Trace trace = makeWorkloadTrace("ocean", params);
        benchmark::DoNotOptimize(trace.size());
    }
}

void
BM_HierarchyRun(benchmark::State &state)
{
    const Trace &trace = randomTrace();
    HierarchyConfig config;
    config.numCores = 8;
    config.llc = microGeometry();
    for (auto _ : state) {
        Hierarchy hierarchy(config, requirePolicyFactory("lru"));
        hierarchy.run(trace);
        hierarchy.finish();
        benchmark::DoNotOptimize(hierarchy.llcSeq());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(trace.size()));
}

BENCHMARK(BM_TagLookupHit);
BENCHMARK(BM_TagLookupMiss);
BENCHMARK(BM_FillEvict);
BENCHMARK_CAPTURE(BM_StreamSimPolicy, lru, "lru");
BENCHMARK_CAPTURE(BM_StreamSimPolicy, srrip, "srrip");
BENCHMARK_CAPTURE(BM_StreamSimPolicy, drrip, "drrip");
BENCHMARK_CAPTURE(BM_StreamSimPolicy, ship, "ship");
BENCHMARK_CAPTURE(BM_StreamSimPolicy, dip, "dip");
BENCHMARK(BM_StreamSimBatched)->Arg(0)->Arg(4)->Arg(8)->Arg(16);
// Wall-clock rates: the shard replays run on pool threads, whose CPU
// time the default CPU-time rate would not see.
BENCHMARK(BM_StreamSimSharded)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();
BENCHMARK(BM_StreamSimOpt);
BENCHMARK(BM_StreamSimOracleWrapped);
BENCHMARK(BM_NextUseIndexBuild);
BENCHMARK(BM_LabelPlaneBuild);
BENCHMARK(BM_OracleLabel);
BENCHMARK(BM_TraceGeneration);
BENCHMARK(BM_HierarchyRun);

} // namespace
} // namespace casim

/**
 * Accept the suite-wide observability flags by translating them to
 * google-benchmark's native reporting options before its own parser
 * sees the command line:
 *
 *   --format=json        -> --benchmark_format=json
 *   --stats-out=PATH     -> --benchmark_out=PATH (JSON)
 *
 * `--print-simd-isa` prints the tag-scan ISA the process resolved
 * (avx2/neon/scalar, honouring CASIM_NO_SIMD) and exits; the
 * throughput harness records it next to the numbers it publishes.
 * All other arguments pass through untouched, so the full
 * --benchmark_* surface keeps working.
 */
int
main(int argc, char **argv)
{
    std::vector<std::string> translated;
    translated.reserve(static_cast<std::size_t>(argc) + 2);
    translated.emplace_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--print-simd-isa") {
            std::printf("%s\n", casim::simd::tagScanIsa());
            return 0;
        } else if (arg == "--format=json") {
            translated.emplace_back("--benchmark_format=json");
        } else if (arg == "--format=text" || arg == "--format=csv") {
            // Console output is the default; csv maps to the console
            // reporter too since benchmark's csv reporter is
            // deprecated.
        } else if (arg.rfind("--stats-out=", 0) == 0) {
            translated.emplace_back("--benchmark_out=" +
                                    arg.substr(12));
            translated.emplace_back("--benchmark_out_format=json");
        } else {
            translated.emplace_back(arg);
        }
    }
    std::vector<char *> args;
    args.reserve(translated.size());
    for (auto &arg : translated)
        args.push_back(arg.data());
    int translated_argc = static_cast<int>(args.size());
    benchmark::Initialize(&translated_argc, args.data());
    if (benchmark::ReportUnrecognizedArguments(translated_argc,
                                               args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
