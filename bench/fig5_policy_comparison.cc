/**
 * @file
 * Figure 5: LLC misses of the recent replacement proposals — NRU,
 * SRRIP, BRRIP, DRRIP, DIP and SHiP — and of Belady's OPT, normalised
 * to LRU on the identical captured LLC stream.  The gap between the
 * best online policy and OPT frames how much headroom (including
 * sharing-awareness) remains.
 *
 * Usage: fig5_policy_comparison [--scale=1] [--threads=8]
 *        [--llc-mb=4] [--jobs=N] [--shards=K]
 *        [--format={text,csv,json}] [--stats-out=PATH]
 *
 * --shards=K replays each eligible (per-set-state) cell as K
 * concurrent set shards; the table is byte-identical for any K.
 */

#include "common/table.hh"
#include "sim/bench_driver.hh"
#include "sim/experiment.hh"

using namespace casim;

int
main(int argc, char **argv)
{
    BenchDriver driver("fig5_policy_comparison", argc, argv);
    const StudyConfig &config = driver.config();
    const std::uint64_t llc_bytes = driver.llcBytes();
    const CacheGeometry geo = config.llcGeometry(llc_bytes);

    const std::vector<std::string> policies{
        "nru", "srrip", "brrip", "drrip", "dip",
        "ship", "tadip", "tadrrip"};

    std::vector<std::string> headers{"app", "lru"};
    for (const auto &p : policies)
        headers.push_back(p);
    headers.push_back("opt");

    TablePrinter table("Figure 5: LLC misses normalised to LRU, " +
                           std::to_string(llc_bytes >> 20) + "MB LLC",
                       headers);

    ParallelRunner &runner = driver.runner();
    const auto captured = captureAllWorkloads(config, runner);

    // Fan out one cell per (workload, policy): slot layout is
    // [workload][lru, policies..., opt], so assembly below reads the
    // same numbers the serial loop produced.
    const std::size_t num_cells = policies.size() + 2;
    const auto misses = runner.map<std::uint64_t>(
        captured.size() * num_cells, [&](std::size_t cell) {
            const CapturedWorkload &wl = captured[cell / num_cells];
            const std::size_t p = cell % num_cells;
            ReplaySpec spec;
            spec.geo = geo;
            // Nested fan-out: this cell is itself a runner task, so the
            // shard batch runs inline on this worker (see
            // ParallelRunner::run), trading cell- for shard-level
            // parallelism only when the cell grid underfills the pool.
            spec.shards = config.shards;
            spec.shardRunner = &runner;
            if (p >= 1 && p <= policies.size()) {
                spec.policy = policies[p - 1];
            } else if (p > policies.size()) {
                // The memoized per-workload index: built by the first
                // OPT cell that needs it, shared by all others.
                spec.policy = "opt";
                spec.nextUse = &wl.nextUse();
            }
            return replayMisses(wl.stream, spec);
        });

    std::vector<std::vector<double>> columns(policies.size() + 1);
    for (std::size_t w = 0; w < captured.size(); ++w) {
        const std::uint64_t *cells = &misses[w * num_cells];
        const std::uint64_t lru = cells[0];
        if (lru == 0)
            continue;
        const double base = static_cast<double>(lru);

        std::vector<double> row{1.0};
        for (std::size_t p = 0; p < policies.size() + 1; ++p) {
            row.push_back(cells[p + 1] / base);
            columns[p].push_back(cells[p + 1] / base);
        }
        table.addRow(captured[w].info.name, row, 3);
    }
    table.addSeparator();
    std::vector<double> means{1.0};
    for (const auto &column : columns)
        means.push_back(geomean(column));
    table.addRow("geomean", means, 3);

    driver.report(table);
    return driver.finish();
}
