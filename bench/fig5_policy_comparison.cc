/**
 * @file
 * Figure 5: LLC misses of the recent replacement proposals — NRU,
 * SRRIP, BRRIP, DRRIP, DIP and SHiP — and of Belady's OPT, normalised
 * to LRU on the identical captured LLC stream.  The gap between the
 * best online policy and OPT frames how much headroom (including
 * sharing-awareness) remains.
 *
 * Usage: fig5_policy_comparison [--scale=1] [--threads=8]
 *        [--llc-mb=4] [--jobs=N] [--shards=K]
 *        [--format={text,csv,json}] [--stats-out=PATH] [--daemon=PATH]
 *
 * --shards=K replays each eligible (per-set-state) cell as K
 * concurrent set shards; the table is byte-identical for any K.
 */

#include "common/table.hh"
#include "sim/bench_driver.hh"
#include "sim/queue.hh"

using namespace casim;

int
main(int argc, char **argv)
{
    BenchDriver driver("fig5_policy_comparison", argc, argv);
    const StudyConfig &config = driver.config();
    const std::uint64_t llc_bytes = driver.llcBytes();

    const std::vector<std::string> policies{
        "nru", "srrip", "brrip", "drrip", "dip",
        "ship", "tadip", "tadrrip"};

    std::vector<std::string> headers{"app", "lru"};
    for (const auto &p : policies)
        headers.push_back(p);
    headers.push_back("opt");

    TablePrinter table("Figure 5: LLC misses normalised to LRU, " +
                           std::to_string(llc_bytes >> 20) + "MB LLC",
                       headers);

    // One request per (workload, policy): slot layout is
    // [workload][lru, policies..., opt], so assembly below reads the
    // same numbers the serial loop produced.  Capture, next-use
    // warming and the cell fan-out all happen behind the service.
    const auto infos = allWorkloads();
    const std::size_t num_cells = policies.size() + 2;
    std::vector<ExperimentRequest> requests;
    for (const auto &info : infos) {
        for (std::size_t p = 0; p < num_cells; ++p) {
            ExperimentRequest request;
            request.workload = info.name;
            request.llcBytes = llc_bytes;
            request.config = config;
            if (p >= 1 && p <= policies.size())
                request.policy = policies[p - 1];
            else if (p > policies.size())
                request.policy = "opt";
            requests.push_back(request);
        }
    }
    const auto results = driver.service().runBatch(requests);

    std::vector<std::vector<double>> columns(policies.size() + 1);
    for (std::size_t w = 0; w < infos.size(); ++w) {
        const ExperimentResult *cells = &results[w * num_cells];
        const std::uint64_t lru = cells[0].misses;
        if (lru == 0)
            continue;
        const double base = static_cast<double>(lru);

        std::vector<double> row{1.0};
        for (std::size_t p = 0; p < policies.size() + 1; ++p) {
            row.push_back(cells[p + 1].misses / base);
            columns[p].push_back(cells[p + 1].misses / base);
        }
        table.addRow(infos[w].name, row, 3);
    }
    table.addSeparator();
    std::vector<double> means{1.0};
    for (const auto &column : columns)
        means.push_back(geomean(column));
    table.addRow("geomean", means, 3);

    driver.report(table);
    return driver.finish();
}
