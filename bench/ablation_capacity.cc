/**
 * @file
 * Ablation A2: LLC capacity sweep (1-16 MB).  Tracks how the shared
 * fraction of LLC hit volume and the sharing-aware oracle's gain over
 * LRU evolve with capacity — the paper's 4 MB -> 8 MB trend (bigger
 * caches reward sharing-awareness more) extended across the range.
 *
 * Usage: ablation_capacity [--scale=1] [--threads=8] [--csv]
 */

#include <iostream>

#include "common/options.hh"
#include "common/table.hh"
#include "mem/repl/factory.hh"
#include "sim/experiment.hh"

using namespace casim;

int
main(int argc, char **argv)
{
    const Options options(argc, argv);
    const StudyConfig config = StudyConfig::fromOptions(options);
    const std::vector<std::uint64_t> capacities{
        1ULL << 20, 2ULL << 20, 4ULL << 20, 8ULL << 20, 16ULL << 20};

    const auto captured = captureAllWorkloads(config);

    TablePrinter table("A2: capacity sweep, means across all workloads",
                       {"llc", "lru_miss_ratio", "shared_hit%",
                        "oracle_gain%", "opt_gain%"});

    for (const std::uint64_t bytes : capacities) {
        const CacheGeometry geo = config.llcGeometry(bytes);
        const SeqNo window = config.oracleWindow(bytes);
        std::vector<double> miss_ratios, shared_fracs, oracle_gains,
            opt_gains;
        for (const auto &wl : captured) {
            const NextUseIndex index(wl.stream);
            const auto lru =
                replayMisses(wl.stream, geo, makePolicyFactory("lru"));
            if (lru == 0 || wl.stream.empty())
                continue;
            miss_ratios.push_back(
                static_cast<double>(lru) /
                static_cast<double>(wl.stream.size()));
            const SharingSummary sharing = replaySharing(
                wl.stream, geo, makePolicyFactory("lru"),
                config.workload.threads);
            shared_fracs.push_back(100.0 * sharing.sharedHitFraction);

            OracleLabeler oracle = makeOracle(index, config, bytes);
            const auto aware = replayMissesWrapped(
                wl.stream, geo, makePolicyFactory("lru"), oracle,
                config);
            oracle_gains.push_back(
                100.0 * (1.0 - static_cast<double>(aware) /
                                   static_cast<double>(lru)));
            const auto opt = replayMissesOpt(wl.stream, index, geo);
            opt_gains.push_back(
                100.0 * (1.0 - static_cast<double>(opt) /
                                   static_cast<double>(lru)));
        }
        table.addRow(std::to_string(bytes >> 20) + "MB",
                     {mean(miss_ratios), mean(shared_fracs),
                      mean(oracle_gains), mean(opt_gains)},
                     2);
    }

    if (options.has("csv"))
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    return 0;
}
