/**
 * @file
 * Ablation A2: LLC capacity sweep (1-16 MB).  Tracks how the shared
 * fraction of LLC hit volume and the sharing-aware oracle's gain over
 * LRU evolve with capacity — the paper's 4 MB -> 8 MB trend (bigger
 * caches reward sharing-awareness more) extended across the range.
 *
 * Usage: ablation_capacity [--scale=1] [--threads=8] [--jobs=N]
 *        [--format={text,csv,json}] [--stats-out=PATH]
 */

#include "common/table.hh"
#include "sim/bench_driver.hh"
#include "sim/experiment.hh"

using namespace casim;

namespace {

/** Metrics of one (capacity, workload) simulation cell. */
struct Cell
{
    bool skip = true;
    double missRatio = 0.0;
    double sharedPct = 0.0;
    double oracleGain = 0.0;
    double optGain = 0.0;
};

} // namespace

int
main(int argc, char **argv)
{
    BenchDriver driver("ablation_capacity", argc, argv);
    const StudyConfig &config = driver.config();
    const std::vector<std::uint64_t> capacities{
        1ULL << 20, 2ULL << 20, 4ULL << 20, 8ULL << 20, 16ULL << 20};

    ParallelRunner &runner = driver.runner();
    const auto captured = captureAllWorkloads(config, runner);

    TablePrinter table("A2: capacity sweep, means across all workloads",
                       {"llc", "lru_miss_ratio", "shared_hit%",
                        "oracle_gain%", "opt_gain%"});

    // One cell per (capacity, workload); each owns its replays and
    // next-use index, sharing only the read-only captured stream.
    const auto cells = runner.map<Cell>(
        capacities.size() * captured.size(), [&](std::size_t c) {
            const std::uint64_t bytes = capacities[c / captured.size()];
            const CapturedWorkload &wl = captured[c % captured.size()];

            Cell cell;
            const NextUseIndex &index = wl.nextUse();
            ReplaySpec lru_spec;
            lru_spec.geo = config.llcGeometry(bytes);
            const auto lru = replayMisses(wl.stream, lru_spec);
            if (lru == 0 || wl.stream.empty())
                return cell;
            cell.skip = false;
            cell.missRatio = static_cast<double>(lru) /
                             static_cast<double>(wl.stream.size());
            const SharingSummary sharing = replaySharing(
                wl.stream, lru_spec, config.workload.threads);
            cell.sharedPct = 100.0 * sharing.sharedHitFraction;

            OracleLabeler oracle = makeOracle(index, config, bytes);
            ReplaySpec aware_spec = lru_spec;
            aware_spec.labeler = &oracle;
            aware_spec.config = &config;
            const auto aware = replayMisses(wl.stream, aware_spec);
            cell.oracleGain =
                100.0 * (1.0 - static_cast<double>(aware) /
                                   static_cast<double>(lru));
            ReplaySpec opt_spec = lru_spec;
            opt_spec.policy = "opt";
            opt_spec.nextUse = &index;
            const auto opt = replayMisses(wl.stream, opt_spec);
            cell.optGain =
                100.0 * (1.0 - static_cast<double>(opt) /
                                   static_cast<double>(lru));
            return cell;
        });

    for (std::size_t k = 0; k < capacities.size(); ++k) {
        std::vector<double> miss_ratios, shared_fracs, oracle_gains,
            opt_gains;
        for (std::size_t w = 0; w < captured.size(); ++w) {
            const Cell &cell = cells[k * captured.size() + w];
            if (cell.skip)
                continue;
            miss_ratios.push_back(cell.missRatio);
            shared_fracs.push_back(cell.sharedPct);
            oracle_gains.push_back(cell.oracleGain);
            opt_gains.push_back(cell.optGain);
        }
        table.addRow(std::to_string(capacities[k] >> 20) + "MB",
                     {mean(miss_ratios), mean(shared_fracs),
                      mean(oracle_gains), mean(opt_gains)},
                     2);
    }

    driver.report(table);
    return driver.finish();
}
