/**
 * @file
 * Ablation A2: LLC capacity sweep (1-16 MB).  Tracks how the shared
 * fraction of LLC hit volume and the sharing-aware oracle's gain over
 * LRU evolve with capacity — the paper's 4 MB -> 8 MB trend (bigger
 * caches reward sharing-awareness more) extended across the range.
 *
 * Usage: ablation_capacity [--scale=1] [--threads=8] [--jobs=N] [--csv]
 */

#include <iostream>

#include "common/options.hh"
#include "common/table.hh"
#include "mem/repl/factory.hh"
#include "sim/experiment.hh"
#include "sim/parallel.hh"

using namespace casim;

namespace {

/** Metrics of one (capacity, workload) simulation cell. */
struct Cell
{
    bool skip = true;
    double missRatio = 0.0;
    double sharedPct = 0.0;
    double oracleGain = 0.0;
    double optGain = 0.0;
};

} // namespace

int
main(int argc, char **argv)
{
    const Options options(argc, argv);
    const StudyConfig config = StudyConfig::fromOptions(options);
    const std::vector<std::uint64_t> capacities{
        1ULL << 20, 2ULL << 20, 4ULL << 20, 8ULL << 20, 16ULL << 20};

    ParallelRunner runner(options.jobs());
    const auto captured = captureAllWorkloads(config, runner);

    TablePrinter table("A2: capacity sweep, means across all workloads",
                       {"llc", "lru_miss_ratio", "shared_hit%",
                        "oracle_gain%", "opt_gain%"});

    // One cell per (capacity, workload); each owns its replays and
    // next-use index, sharing only the read-only captured stream.
    const auto cells = runner.map<Cell>(
        capacities.size() * captured.size(), [&](std::size_t c) {
            const std::uint64_t bytes = capacities[c / captured.size()];
            const CapturedWorkload &wl = captured[c % captured.size()];
            const CacheGeometry geo = config.llcGeometry(bytes);

            Cell cell;
            const NextUseIndex &index = wl.nextUse();
            const auto lru =
                replayMisses(wl.stream, geo, makePolicyFactory("lru"));
            if (lru == 0 || wl.stream.empty())
                return cell;
            cell.skip = false;
            cell.missRatio = static_cast<double>(lru) /
                             static_cast<double>(wl.stream.size());
            const SharingSummary sharing = replaySharing(
                wl.stream, geo, makePolicyFactory("lru"),
                config.workload.threads);
            cell.sharedPct = 100.0 * sharing.sharedHitFraction;

            OracleLabeler oracle = makeOracle(index, config, bytes);
            const auto aware = replayMissesWrapped(
                wl.stream, geo, makePolicyFactory("lru"), oracle,
                config);
            cell.oracleGain =
                100.0 * (1.0 - static_cast<double>(aware) /
                                   static_cast<double>(lru));
            const auto opt = replayMissesOpt(wl.stream, index, geo);
            cell.optGain =
                100.0 * (1.0 - static_cast<double>(opt) /
                                   static_cast<double>(lru));
            return cell;
        });

    for (std::size_t k = 0; k < capacities.size(); ++k) {
        std::vector<double> miss_ratios, shared_fracs, oracle_gains,
            opt_gains;
        for (std::size_t w = 0; w < captured.size(); ++w) {
            const Cell &cell = cells[k * captured.size() + w];
            if (cell.skip)
                continue;
            miss_ratios.push_back(cell.missRatio);
            shared_fracs.push_back(cell.sharedPct);
            oracle_gains.push_back(cell.oracleGain);
            opt_gains.push_back(cell.optGain);
        }
        table.addRow(std::to_string(capacities[k] >> 20) + "MB",
                     {mean(miss_ratios), mean(shared_fracs),
                      mean(oracle_gains), mean(opt_gains)},
                     2);
    }

    if (options.has("csv"))
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    return 0;
}
