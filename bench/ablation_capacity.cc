/**
 * @file
 * Ablation A2: LLC capacity sweep (1-16 MB).  Tracks how the shared
 * fraction of LLC hit volume and the sharing-aware oracle's gain over
 * LRU evolve with capacity — the paper's 4 MB -> 8 MB trend (bigger
 * caches reward sharing-awareness more) extended across the range.
 *
 * Usage: ablation_capacity [--scale=1] [--threads=8] [--jobs=N]
 *        [--format={text,csv,json}] [--stats-out=PATH] [--daemon=PATH]
 */

#include "common/table.hh"
#include "sim/bench_driver.hh"
#include "sim/queue.hh"

using namespace casim;

int
main(int argc, char **argv)
{
    BenchDriver driver("ablation_capacity", argc, argv);
    const StudyConfig &config = driver.config();
    const std::vector<std::uint64_t> capacities{
        1ULL << 20, 2ULL << 20, 4ULL << 20, 8ULL << 20, 16ULL << 20};

    TablePrinter table("A2: capacity sweep, means across all workloads",
                       {"llc", "lru_miss_ratio", "shared_hit%",
                        "oracle_gain%", "opt_gain%"});

    // Four requests per (capacity, workload): LRU replay, sharing
    // characterization, oracle-wrapped replay, OPT replay.
    const auto infos = allWorkloads();
    std::vector<ExperimentRequest> requests;
    for (const std::uint64_t bytes : capacities) {
        for (const auto &info : infos) {
            ExperimentRequest lru;
            lru.workload = info.name;
            lru.llcBytes = bytes;
            lru.config = config;
            ExperimentRequest sharing = lru;
            sharing.kind = "sharing";
            ExperimentRequest aware = lru;
            aware.labeler = "oracle";
            ExperimentRequest opt = lru;
            opt.policy = "opt";
            requests.push_back(lru);
            requests.push_back(sharing);
            requests.push_back(aware);
            requests.push_back(opt);
        }
    }
    const auto results = driver.service().runBatch(requests);

    for (std::size_t k = 0; k < capacities.size(); ++k) {
        std::vector<double> miss_ratios, shared_fracs, oracle_gains,
            opt_gains;
        for (std::size_t w = 0; w < infos.size(); ++w) {
            const ExperimentResult *cells =
                &results[(k * infos.size() + w) * 4];
            const std::uint64_t lru = cells[0].misses;
            if (lru == 0 || cells[0].streamRefs == 0)
                continue;
            const double base = static_cast<double>(lru);
            miss_ratios.push_back(
                base / static_cast<double>(cells[0].streamRefs));
            shared_fracs.push_back(
                100.0 * cells[1].sharing.sharedHitFraction);
            oracle_gains.push_back(
                100.0 *
                (1.0 - static_cast<double>(cells[2].misses) / base));
            opt_gains.push_back(
                100.0 *
                (1.0 - static_cast<double>(cells[3].misses) / base));
        }
        table.addRow(std::to_string(capacities[k] >> 20) + "MB",
                     {mean(miss_ratios), mean(shared_fracs),
                      mean(oracle_gains), mean(opt_gains)},
                     2);
    }

    driver.report(table);
    return driver.finish();
}
