/**
 * @file
 * Ablation A4: oracle label definitions.  Compares three fill-time
 * label sources feeding the same sharing-aware victim filter:
 *
 *  - future-window oracle (the study's primary definition);
 *  - the same oracle with a tight near-reuse qualifier (label only
 *    blocks whose next use falls within one LLC capacity of stream
 *    slots — trades coverage for label precision);
 *  - residency-replay oracle (labels the k-th fill of each block with
 *    the sharing outcome its k-th residency had in a recorded baseline
 *    run).
 *
 * Usage: ablation_oracle_variant [--scale=1] [--threads=8]
 *        [--format={text,csv,json}] [--stats-out=PATH]
 */

#include "common/table.hh"
#include "core/sharing_tracker.hh"
#include "mem/repl/factory.hh"
#include "sim/bench_driver.hh"
#include "sim/experiment.hh"
#include "sim/stream_sim.hh"

using namespace casim;

namespace {

/**
 * Record per-block residency outcomes of a plain-LRU run to feed the
 * residency-replay labeler.
 */
class OutcomeRecorder : public CacheObserver
{
  public:
    explicit OutcomeRecorder(ResidencyReplayLabeler &labeler)
        : labeler_(labeler)
    {
    }

    void
    onResidencyEnd(const CacheBlock &block) override
    {
        labeler_.recordOutcome(block.addr, block.sharedThisResidency());
    }

  private:
    ResidencyReplayLabeler &labeler_;
};

} // namespace

int
main(int argc, char **argv)
{
    BenchDriver driver("ablation_oracle_variant", argc, argv);
    const StudyConfig &config = driver.config();

    TablePrinter table(
        "A4: oracle label variants, sa+LRU misses / LRU misses",
        {"app", "future_4mb", "tight_4mb", "replay_4mb", "future_8mb",
         "tight_8mb", "replay_8mb"});

    std::vector<double> cols[6];
    for (const auto &info : allWorkloads()) {
        const CapturedWorkload wl = captureWorkload(info.name, config);
        const NextUseIndex &index = wl.nextUse();

        std::vector<double> row;
        int col = 0;
        for (const std::uint64_t bytes :
             {config.llcSmallBytes, config.llcLargeBytes}) {
            const CacheGeometry geo = config.llcGeometry(bytes);
            const SeqNo window = config.oracleWindow(bytes);
            ReplaySpec lru_spec;
            lru_spec.geo = geo;
            const auto lru = replayMisses(wl.stream, lru_spec);
            const double base =
                lru == 0 ? 1.0 : static_cast<double>(lru);

            ReplaySpec aware_spec = lru_spec;
            aware_spec.config = &config;

            // Primary: future window with the near-reuse qualifier.
            OracleLabeler future = makeOracle(index, config, bytes);
            aware_spec.labeler = &future;
            const double f =
                replayMisses(wl.stream, aware_spec) / base;

            // Variant: tight near-reuse qualifier (one capacity).
            OracleLabeler tight(index, window, bytes / kBlockBytes);
            aware_spec.labeler = &tight;
            const double u =
                replayMisses(wl.stream, aware_spec) / base;

            // Variant: residency outcomes replayed from a baseline
            // LRU run at this geometry.
            ResidencyReplayLabeler replay;
            {
                OutcomeRecorder recorder(replay);
                StreamSim recording(
                    wl.stream, geo,
                    requirePolicyFactory("lru")(geo.numSets(),
                                                geo.ways));
                recording.setObserver(&recorder);
                recording.run();
            }
            aware_spec.labeler = &replay;
            const double r =
                replayMisses(wl.stream, aware_spec) / base;

            row.push_back(f);
            row.push_back(u);
            row.push_back(r);
            cols[col++].push_back(f);
            cols[col++].push_back(u);
            cols[col++].push_back(r);
        }
        table.addRow(info.name, row, 3);
    }
    table.addSeparator();
    table.addRow("mean",
                 {mean(cols[0]), mean(cols[1]), mean(cols[2]),
                  mean(cols[3]), mean(cols[4]), mean(cols[5])},
                 3);

    driver.report(table);
    return driver.finish();
}
