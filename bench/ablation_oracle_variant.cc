/**
 * @file
 * Ablation A4: oracle label definitions.  Compares three fill-time
 * label sources feeding the same sharing-aware victim filter:
 *
 *  - future-window oracle (the study's primary definition);
 *  - the same oracle with a tight near-reuse qualifier (label only
 *    blocks whose next use falls within one LLC capacity of stream
 *    slots — trades coverage for label precision);
 *  - residency-replay oracle (labels the k-th fill of each block with
 *    the sharing outcome its k-th residency had in a recorded baseline
 *    run).
 *
 * Usage: ablation_oracle_variant [--scale=1] [--threads=8]
 *        [--format={text,csv,json}] [--stats-out=PATH] [--daemon=PATH]
 */

#include "common/table.hh"
#include "sim/bench_driver.hh"
#include "sim/queue.hh"

using namespace casim;

int
main(int argc, char **argv)
{
    BenchDriver driver("ablation_oracle_variant", argc, argv);
    const StudyConfig &config = driver.config();

    TablePrinter table(
        "A4: oracle label variants, sa+LRU misses / LRU misses",
        {"app", "future_4mb", "tight_4mb", "replay_4mb", "future_8mb",
         "tight_8mb", "replay_8mb"});

    // Per (workload, capacity): the LRU baseline and the three label
    // variants.  The tight qualifier is the near-window factor at 1.0
    // LLC capacities — expressed as a config point, not a bespoke
    // labeler construction.
    const auto infos = allWorkloads();
    std::vector<ExperimentRequest> requests;
    for (const auto &info : infos) {
        for (const std::uint64_t bytes :
             {config.llcSmallBytes, config.llcLargeBytes}) {
            ExperimentRequest lru;
            lru.workload = info.name;
            lru.llcBytes = bytes;
            lru.config = config;
            ExperimentRequest future = lru;
            future.labeler = "oracle";
            ExperimentRequest tight = future;
            tight.config.nearWindowFactor = 1.0;
            ExperimentRequest replay = lru;
            replay.labeler = "residency";
            requests.push_back(lru);
            requests.push_back(future);
            requests.push_back(tight);
            requests.push_back(replay);
        }
    }
    const auto results = driver.service().runBatch(requests);

    std::vector<double> cols[6];
    for (std::size_t w = 0; w < infos.size(); ++w) {
        std::vector<double> row;
        int col = 0;
        for (int k = 0; k < 2; ++k) {
            const ExperimentResult *cells =
                &results[(w * 2 + k) * 4];
            const std::uint64_t lru = cells[0].misses;
            const double base =
                lru == 0 ? 1.0 : static_cast<double>(lru);
            for (int v = 1; v <= 3; ++v) {
                const double ratio = cells[v].misses / base;
                row.push_back(ratio);
                cols[col++].push_back(ratio);
            }
        }
        table.addRow(infos[w].name, row, 3);
    }
    table.addSeparator();
    table.addRow("mean",
                 {mean(cols[0]), mean(cols[1]), mean(cols[2]),
                  mean(cols[3]), mean(cols[4]), mean(cols[5])},
                 3);

    driver.report(table);
    return driver.finish();
}
