/**
 * @file
 * Figure 4: LLC hit volume split into the four residency sharing
 * classes — private read-only, private read-write, shared read-only
 * and shared read-write — at the small LLC.  Read-only sharing
 * (instructions excluded; this is data) is the safest target for
 * retention, read-write sharing also carries coherence cost.
 *
 * Usage: fig4_rw_sharing [--scale=1] [--threads=8] [--csv]
 */

#include <iostream>

#include "common/options.hh"
#include "common/table.hh"
#include "mem/repl/factory.hh"
#include "sim/experiment.hh"

using namespace casim;

int
main(int argc, char **argv)
{
    const Options options(argc, argv);
    const StudyConfig config = StudyConfig::fromOptions(options);

    TablePrinter table(
        "Figure 4: LLC hit volume by sharing class, " +
            std::to_string(config.llcSmallBytes >> 20) + "MB LLC (LRU)",
        {"app", "private_ro%", "private_rw%", "shared_ro%",
         "shared_rw%"});

    std::vector<double> col[4];
    for (const auto &info : allWorkloads()) {
        const CapturedWorkload wl = captureWorkload(info.name, config);
        const SharingSummary sharing = replaySharing(
            wl.stream, config.llcGeometry(config.llcSmallBytes),
            makePolicyFactory("lru"), config.workload.threads);

        double total = 0;
        for (int c = 0; c < 4; ++c)
            total += static_cast<double>(sharing.classHits[c]);
        std::vector<double> row;
        for (int c = 0; c < 4; ++c) {
            const double pct =
                total > 0
                    ? 100.0 *
                          static_cast<double>(sharing.classHits[c]) /
                          total
                    : 0.0;
            row.push_back(pct);
            col[c].push_back(pct);
        }
        table.addRow(info.name, row, 1);
    }
    table.addSeparator();
    table.addRow("mean",
                 {mean(col[0]), mean(col[1]), mean(col[2]),
                  mean(col[3])},
                 1);

    if (options.has("csv"))
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    return 0;
}
