/**
 * @file
 * Figure 4: LLC hit volume split into the four residency sharing
 * classes — private read-only, private read-write, shared read-only
 * and shared read-write — at the small LLC.  Read-only sharing
 * (instructions excluded; this is data) is the safest target for
 * retention, read-write sharing also carries coherence cost.
 *
 * Usage: fig4_rw_sharing [--scale=1] [--threads=8]
 *        [--format={text,csv,json}] [--stats-out=PATH] [--daemon=PATH]
 */

#include "common/table.hh"
#include "sim/bench_driver.hh"
#include "sim/queue.hh"

using namespace casim;

int
main(int argc, char **argv)
{
    BenchDriver driver("fig4_rw_sharing", argc, argv);
    const StudyConfig &config = driver.config();

    TablePrinter table(
        "Figure 4: LLC hit volume by sharing class, " +
            std::to_string(config.llcSmallBytes >> 20) + "MB LLC (LRU)",
        {"app", "private_ro%", "private_rw%", "shared_ro%",
         "shared_rw%"});

    const auto infos = allWorkloads();
    std::vector<ExperimentRequest> requests;
    for (const auto &info : infos) {
        ExperimentRequest request;
        request.kind = "sharing";
        request.workload = info.name;
        request.config = config;
        requests.push_back(request);
    }
    const auto results = driver.service().runBatch(requests);

    std::vector<double> col[4];
    for (std::size_t w = 0; w < infos.size(); ++w) {
        const SharingSummary &sharing = results[w].sharing;

        double total = 0;
        for (int c = 0; c < 4; ++c)
            total += static_cast<double>(sharing.classHits[c]);
        std::vector<double> row;
        for (int c = 0; c < 4; ++c) {
            const double pct =
                total > 0
                    ? 100.0 *
                          static_cast<double>(sharing.classHits[c]) /
                          total
                    : 0.0;
            row.push_back(pct);
            col[c].push_back(pct);
        }
        table.addRow(infos[w].name, row, 1);
    }
    table.addSeparator();
    table.addRow("mean",
                 {mean(col[0]), mean(col[1]), mean(col[2]),
                  mean(col[3])},
                 1);

    driver.report(table);
    return driver.finish();
}
